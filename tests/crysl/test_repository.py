"""Incremental recompilation through :class:`RuleRepository`."""

from __future__ import annotations

import os
import shutil
from pathlib import Path

import pytest

from repro.cache import DiskRuleCache
from repro.crysl import CrySLError, RuleRepository

RULES_DIR = Path("src/repro/rules")


@pytest.fixture()
def rules_copy(tmp_path):
    """A private, editable copy of the bundled rule directory."""
    directory = tmp_path / "rules"
    directory.mkdir()
    for path in sorted(RULES_DIR.glob("*.crysl")):
        shutil.copy(path, directory / path.name)
    return directory


def _compile_all(ruleset) -> None:
    for rule in ruleset:
        ruleset.compiled(rule)


def _edit(path: Path, old: str, new: str) -> None:
    text = path.read_text(encoding="utf-8")
    assert old in text
    path.write_text(text.replace(old, new), encoding="utf-8")


class TestRefresh:
    def test_clean_refresh_is_not_dirty(self, rules_copy):
        repo = RuleRepository(rules_copy)
        report = repo.refresh()
        assert not report.dirty
        assert report.unchanged == len(list(rules_copy.glob("*.crysl")))
        assert repo.refreshes == 1

    def test_mtime_touch_without_content_change_is_unchanged(self, rules_copy):
        repo = RuleRepository(rules_copy)
        before = repo.ruleset
        target = rules_copy / "SecureRandom.crysl"
        os.utime(target, ns=(12345, 10**18))
        report = repo.refresh()
        assert not report.dirty
        assert repo.ruleset is before  # same snapshot object

    def test_edit_recompiles_exactly_one_rule(self, rules_copy):
        repo = RuleRepository(rules_copy)
        _compile_all(repo.ruleset)

        _edit(
            rules_copy / "SecretKeySpec.crysl",
            "generated_key[this, cipher_algorithm]",
            "generated_key[this, cipher_algorithm] ",
        )
        report = repo.refresh()
        assert report.changed == ("repro.jca.SecretKeySpec",)
        assert not report.added and not report.removed

        successor = repo.ruleset
        _compile_all(successor)
        stats = successor.compile_stats
        # Exactly the edited rule went cold; every carried entry hit.
        assert stats.misses == 1
        assert stats.hits == len(successor) - 1

    def test_dependents_relink_on_edit(self, rules_copy):
        repo = RuleRepository(rules_copy)
        _compile_all(repo.ruleset)
        cipher = repo.ruleset.compiled("Cipher")
        # Force Cipher's memoised predicate-link tables to exist.
        assert cipher.ensures_by_name

        _edit(
            rules_copy / "SecretKeySpec.crysl",
            "generated_key[this, cipher_algorithm]",
            "generated_key[this, cipher_algorithm] ",
        )
        report = repo.refresh()
        # Cipher REQUIRES generated_key, which SecretKeySpec ENSURES.
        assert "repro.jca.Cipher" in report.relinked

        successor = repo.ruleset
        carried = successor.compiled("Cipher")
        assert carried is cipher  # artefacts carried, not recompiled
        assert carried._ensures_by_name is None  # memos dropped

    def test_added_and_removed_files(self, rules_copy):
        repo = RuleRepository(rules_copy)
        count = len(repo.ruleset)

        source = (rules_copy / "SecureRandom.crysl").read_text(encoding="utf-8")
        (rules_copy / "SecureRandom.crysl").unlink()
        report = repo.refresh()
        assert report.removed == ("repro.jca.SecureRandom",)
        assert len(repo.ruleset) == count - 1
        assert "SecureRandom" not in repo.ruleset

        (rules_copy / "SecureRandom.crysl").write_text(source, encoding="utf-8")
        report = repo.refresh()
        assert report.added == ("repro.jca.SecureRandom",)
        assert len(repo.ruleset) == count

    def test_broken_edit_keeps_previous_snapshot(self, rules_copy):
        repo = RuleRepository(rules_copy)
        before = repo.ruleset
        target = rules_copy / "SecureRandom.crysl"
        target.write_text("SPEC ???", encoding="utf-8")
        with pytest.raises(CrySLError):
            repo.refresh()
        assert repo.ruleset is before
        assert "SecureRandom" in repo.ruleset


class TestDiskCache:
    def test_unchanged_rules_warm_start_from_disk(self, rules_copy, tmp_path):
        cache = DiskRuleCache(tmp_path / "cache")
        first = RuleRepository(rules_copy, disk_cache=cache)
        _compile_all(first.ruleset)
        for rule in first.ruleset:
            first.ruleset.compiled(rule).paths  # force the artefacts
        first.ruleset.flush_disk_cache()

        # A fresh repository (a new process, in effect) over the same
        # directory and cache loads every rule from disk: no DFA builds.
        second = RuleRepository(rules_copy, disk_cache=cache)
        _compile_all(second.ruleset)
        for rule in second.ruleset:
            second.ruleset.compiled(rule).paths
        stats = second.ruleset.compile_stats
        assert stats.disk_hits == len(second.ruleset)
        assert stats.dfa_builds == 0

    def test_cache_travels_across_refreshes(self, rules_copy, tmp_path):
        cache = DiskRuleCache(tmp_path / "cache")
        repo = RuleRepository(rules_copy, disk_cache=cache)
        _edit(
            rules_copy / "SecureRandom.crysl",
            "ENSURES",
            "ENSURES ",
        )
        repo.refresh()
        assert repo.ruleset.disk_cache is cache
