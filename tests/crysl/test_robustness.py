"""Robustness properties of the CrySL front end.

The scanner and parser must *terminate* — with a value or a clean
diagnostic — on arbitrary input. (A session of this reproduction once
hung on any rule ending in an identifier; these properties pin the
fix down.)
"""

from __future__ import annotations

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.crysl import CrySLError, check_rule, parse_rule, tokenize
from repro.crysl.errors import CrySLSyntaxError
from repro.crysl.lexer import TokenKind


@settings(max_examples=200, deadline=None)
@given(source=st.text(max_size=200))
@example(source="SPEC a.B")          # ends in an identifier (the old hang)
@example(source="x")
@example(source='"unterminated')
@example(source="/* open comment")
@example(source="-")
@example(source="a.b.c.d.e")
def test_lexer_terminates_on_arbitrary_text(source):
    try:
        tokens = tokenize(source)
    except CrySLSyntaxError:
        return
    assert tokens[-1].kind is TokenKind.EOF


@settings(max_examples=150, deadline=None)
@given(source=st.text(alphabet="SPECabc .;:()[]{}|*+?=<>!&\n\t\"0123456789_", max_size=300))
def test_parser_terminates_on_token_soup(source):
    try:
        parse_rule(source)
    except CrySLError:
        pass  # a clean diagnostic is a valid outcome


#: names the checker rejects up front (repro.crysl.typecheck._RESERVED)
_RESERVED_NAMES = {"this", "_", "after", "in", "true", "false"}

_IDENTS = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda name: name not in _RESERVED_NAMES
)


@settings(max_examples=80, deadline=None)
@given(
    class_name=st.from_regex(r"[a-z]+\.[A-Z][a-zA-Z]{0,6}", fullmatch=True),
    objects=st.lists(_IDENTS, min_size=1, max_size=4, unique=True),
)
def test_wellformed_rules_always_parse(class_name, objects):
    """Generated well-formed rules parse and check."""
    object_section = "\n".join(f"    int {name};" for name in objects)
    params = ", ".join(objects)
    source = (
        f"SPEC {class_name}\n"
        f"OBJECTS\n{object_section}\n"
        f"EVENTS\n    e1: run({params});\n"
        f"ORDER\n    e1\n"
    )
    rule = check_rule(parse_rule(source))
    assert rule.class_name == class_name
    assert [o.name for o in rule.objects] == objects


@settings(max_examples=60, deadline=None)
@given(value=st.integers(min_value=-(10**9), max_value=10**9))
def test_integer_literals_roundtrip(value):
    rule = parse_rule(
        f"SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\nCONSTRAINTS\n x == {value};"
    )
    assert rule.constraints[0].rhs.value == value


@settings(max_examples=60, deadline=None)
@given(
    text=st.text(
        alphabet=st.characters(blacklist_characters='"\\\n', min_codepoint=32, max_codepoint=0x2FF),
        max_size=40,
    )
)
def test_string_literals_roundtrip(text):
    rule = parse_rule(
        f'SPEC a.B\nOBJECTS\n str s;\nEVENTS\n e: m(s);\nCONSTRAINTS\n s == "{text}";'
    )
    assert rule.constraints[0].rhs.value == text


def test_deeply_nested_order_parses():
    depth = 40
    order = "(" * depth + "e" + ")" * depth
    rule = parse_rule(f"SPEC a.B\nEVENTS\n e: m();\nORDER\n {order}")
    from repro.fsm import enumerate_paths

    assert [tuple(ev.label for ev in p) for p in enumerate_paths(rule)] == [("e",)]


def test_long_rule_file(ruleset):
    """A synthetic 200-event rule stays well-behaved."""
    events = "\n".join(f"    e{i}: m{i}();" for i in range(200))
    order = ", ".join(f"e{i}?" for i in range(20))
    rule = check_rule(parse_rule(f"SPEC a.Big\nEVENTS\n{events}\nORDER\n    {order}"))
    assert len(rule.events) == 200
