"""Rule-set loading and lookup."""

from __future__ import annotations

import pytest

from repro.crysl import (
    FrozenRuleSetError,
    RuleSet,
    bundled_ruleset,
    load_rule_file,
    parse_rule,
)
from repro.crysl.errors import RuleNotFoundError

EXPECTED_BUNDLED = {
    "repro.jca.Cipher",
    "repro.jca.GCMParameterSpec",
    "repro.jca.IvParameterSpec",
    "repro.jca.KeyGenerator",
    "repro.jca.KeyPair",
    "repro.jca.KeyPairGenerator",
    "repro.jca.KeyStore",
    "repro.jca.Mac",
    "repro.jca.MessageDigest",
    "repro.jca.PBEKeySpec",
    "repro.jca.SecretKey",
    "repro.jca.SecretKeyFactory",
    "repro.jca.SecretKeySpec",
    "repro.jca.SecureRandom",
    "repro.jca.Signature",
}


def test_bundled_contents(ruleset):
    assert set(ruleset.class_names) == EXPECTED_BUNDLED


def test_lookup_by_qualified_name(ruleset):
    assert ruleset.get("repro.jca.Cipher").simple_name == "Cipher"


def test_lookup_by_simple_name(ruleset):
    assert ruleset.get("Cipher").class_name == "repro.jca.Cipher"


def test_contains(ruleset):
    assert "Cipher" in ruleset
    assert "Nonexistent" not in ruleset


def test_unknown_rule_mentions_known(ruleset):
    with pytest.raises(RuleNotFoundError) as excinfo:
        ruleset.get("Unknown")
    assert "repro.jca.Cipher" in str(excinfo.value)


def test_ambiguous_simple_name():
    rules = RuleSet(
        [
            parse_rule("SPEC a.Thing\nEVENTS\n e: m();"),
            parse_rule("SPEC b.Thing\nEVENTS\n e: m();"),
        ]
    )
    assert rules.get("a.Thing").class_name == "a.Thing"
    with pytest.raises(RuleNotFoundError) as excinfo:
        rules.get("Thing")
    assert "ambiguous" in str(excinfo.value)


def test_add_replaces_same_class():
    rules = RuleSet([parse_rule("SPEC a.Thing\nEVENTS\n e: m();")])
    rules.add(parse_rule("SPEC a.Thing\nEVENTS\n f: n();"))
    assert len(rules) == 1
    assert rules.get("Thing").event_labelled("f") is not None


def test_from_directory(tmp_path):
    (tmp_path / "Thing.crysl").write_text("SPEC x.Thing\nEVENTS\n e: m();")
    rules = RuleSet.from_directory(tmp_path)
    assert rules.class_names == ("x.Thing",)


def test_from_missing_directory():
    with pytest.raises(FileNotFoundError):
        RuleSet.from_directory("/nonexistent/rules")


def test_load_rule_file(tmp_path):
    path = tmp_path / "Thing.crysl"
    path.write_text("SPEC x.Thing\nEVENTS\n e: m();")
    assert load_rule_file(path).class_name == "x.Thing"


def test_bundled_is_cached():
    assert bundled_ruleset() is bundled_ruleset()


def test_every_bundled_rule_has_usage_pattern(ruleset):
    for rule in ruleset:
        assert rule.events, rule.class_name
        assert rule.order is not None, rule.class_name


# ---------------------------------------------------------------------------
# freezing and the compiled-rule cache
# ---------------------------------------------------------------------------


def test_bundled_is_frozen():
    shared = bundled_ruleset()
    assert shared.frozen
    with pytest.raises(FrozenRuleSetError):
        shared.add(parse_rule("SPEC evil.Thing\nEVENTS\n e: m();"))
    assert "evil.Thing" not in shared


def test_frozen_error_suggests_copy():
    shared = bundled_ruleset()
    with pytest.raises(FrozenRuleSetError) as excinfo:
        shared.add(parse_rule("SPEC evil.Thing\nEVENTS\n e: m();"))
    assert "copy()" in str(excinfo.value)


def test_copy_is_mutable_and_isolated():
    shared = bundled_ruleset()
    private = shared.copy()
    assert not private.frozen
    private.add(parse_rule("SPEC mine.Thing\nEVENTS\n e: m();"))
    assert "mine.Thing" in private
    assert "mine.Thing" not in shared


def test_two_generators_cannot_contaminate_each_other():
    """Satellite: one generator customising its rules must not leak
    into another generator built from the shared bundled set."""
    from repro.codegen import CrySLBasedCodeGenerator

    first = CrySLBasedCodeGenerator()
    second = CrySLBasedCodeGenerator()
    assert first.ruleset is second.ruleset  # shared on purpose...
    with pytest.raises(FrozenRuleSetError):
        first.ruleset.add(parse_rule("SPEC evil.Thing\nEVENTS\n e: m();"))
    # ...and a generator that wants private rules takes a copy.
    private = first.ruleset.copy()
    private.add(parse_rule("SPEC mine.Thing\nEVENTS\n e: m();"))
    third = CrySLBasedCodeGenerator(private)
    assert "mine.Thing" in third.ruleset
    assert "mine.Thing" not in second.ruleset


def test_compiled_cache_hit_and_invalidation():
    rules = RuleSet([parse_rule("SPEC a.Thing\nEVENTS\n e: m();")])
    rule = rules.get("Thing")
    entry = rules.compiled(rule)
    assert rules.compiled(rule) is entry
    assert rules.compiled("Thing") is entry  # name lookup hits too
    assert rules.compile_stats.hits == 2
    assert rules.compile_stats.misses == 1
    # Replacing the rule invalidates its entry.
    rules.add(parse_rule("SPEC a.Thing\nEVENTS\n f: n();"))
    fresh = rules.compiled(rules.get("Thing"))
    assert fresh is not entry
    assert rules.compile_stats.misses == 2


def test_copy_has_cold_cache():
    rules = RuleSet([parse_rule("SPEC a.Thing\nEVENTS\n e: m();")])
    rules.compiled("Thing").dfa
    clone = rules.copy()
    assert clone.compile_stats.misses == 0
    assert clone.compile_stats.dfa_builds == 0
