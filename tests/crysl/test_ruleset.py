"""Rule-set loading and lookup."""

from __future__ import annotations

import pytest

from repro.crysl import RuleSet, bundled_ruleset, load_rule_file, parse_rule
from repro.crysl.errors import RuleNotFoundError

EXPECTED_BUNDLED = {
    "repro.jca.Cipher",
    "repro.jca.GCMParameterSpec",
    "repro.jca.IvParameterSpec",
    "repro.jca.KeyGenerator",
    "repro.jca.KeyPair",
    "repro.jca.KeyPairGenerator",
    "repro.jca.KeyStore",
    "repro.jca.Mac",
    "repro.jca.MessageDigest",
    "repro.jca.PBEKeySpec",
    "repro.jca.SecretKey",
    "repro.jca.SecretKeyFactory",
    "repro.jca.SecretKeySpec",
    "repro.jca.SecureRandom",
    "repro.jca.Signature",
}


def test_bundled_contents(ruleset):
    assert set(ruleset.class_names) == EXPECTED_BUNDLED


def test_lookup_by_qualified_name(ruleset):
    assert ruleset.get("repro.jca.Cipher").simple_name == "Cipher"


def test_lookup_by_simple_name(ruleset):
    assert ruleset.get("Cipher").class_name == "repro.jca.Cipher"


def test_contains(ruleset):
    assert "Cipher" in ruleset
    assert "Nonexistent" not in ruleset


def test_unknown_rule_mentions_known(ruleset):
    with pytest.raises(RuleNotFoundError) as excinfo:
        ruleset.get("Unknown")
    assert "repro.jca.Cipher" in str(excinfo.value)


def test_ambiguous_simple_name():
    rules = RuleSet(
        [
            parse_rule("SPEC a.Thing\nEVENTS\n e: m();"),
            parse_rule("SPEC b.Thing\nEVENTS\n e: m();"),
        ]
    )
    assert rules.get("a.Thing").class_name == "a.Thing"
    with pytest.raises(RuleNotFoundError) as excinfo:
        rules.get("Thing")
    assert "ambiguous" in str(excinfo.value)


def test_add_replaces_same_class():
    rules = RuleSet([parse_rule("SPEC a.Thing\nEVENTS\n e: m();")])
    rules.add(parse_rule("SPEC a.Thing\nEVENTS\n f: n();"))
    assert len(rules) == 1
    assert rules.get("Thing").event_labelled("f") is not None


def test_from_directory(tmp_path):
    (tmp_path / "Thing.crysl").write_text("SPEC x.Thing\nEVENTS\n e: m();")
    rules = RuleSet.from_directory(tmp_path)
    assert rules.class_names == ("x.Thing",)


def test_from_missing_directory():
    with pytest.raises(FileNotFoundError):
        RuleSet.from_directory("/nonexistent/rules")


def test_load_rule_file(tmp_path):
    path = tmp_path / "Thing.crysl"
    path.write_text("SPEC x.Thing\nEVENTS\n e: m();")
    assert load_rule_file(path).class_name == "x.Thing"


def test_bundled_is_cached():
    assert bundled_ruleset() is bundled_ruleset()


def test_every_bundled_rule_has_usage_pattern(ruleset):
    for rule in ruleset:
        assert rule.events, rule.class_name
        assert rule.order is not None, rule.class_name
