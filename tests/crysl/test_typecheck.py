"""Semantic checks: every error class the checker knows."""

from __future__ import annotations

import pytest

from repro.crysl import check_rule, parse_rule
from repro.crysl.errors import CrySLSemanticError


def check(source):
    return check_rule(parse_rule(source))


def expect_error(source, fragment):
    with pytest.raises(CrySLSemanticError) as excinfo:
        check(source)
    assert fragment in str(excinfo.value)


def test_valid_rule_passes():
    rule = check(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\nORDER\n e\n"
        "CONSTRAINTS\n x >= 1;"
    )
    assert rule.simple_name == "B"


def test_duplicate_object():
    expect_error("SPEC a.B\nOBJECTS\n int x;\n int x;", "duplicate object")


def test_reserved_object_name():
    expect_error("SPEC a.B\nOBJECTS\n int this;", "reserved")


def test_unknown_primitive_type():
    expect_error("SPEC a.B\nOBJECTS\n longint x;", "unknown type")


def test_qualified_class_types_allowed():
    check("SPEC a.B\nOBJECTS\n repro.jca.SecretKey key;\nEVENTS\n e: m(key);")


def test_undeclared_event_parameter():
    expect_error("SPEC a.B\nEVENTS\n e: m(ghost);", "undeclared object 'ghost'")


def test_wildcard_and_this_params_allowed():
    check("SPEC a.B\nEVENTS\n e: m(_, this);")


def test_undeclared_result():
    expect_error("SPEC a.B\nEVENTS\n e: ghost = m();", "undeclared")


def test_duplicate_event_label():
    expect_error("SPEC a.B\nEVENTS\n e: m();\n e: n();", "duplicate event label")


def test_aggregate_unknown_member():
    expect_error("SPEC a.B\nEVENTS\n e: m();\n Agg := e | ghost;", "unknown label")


def test_aggregate_cycle():
    expect_error(
        "SPEC a.B\nEVENTS\n e: m();\n A := B | e;\n B := A | e;", "cycle"
    )


def test_order_unknown_label():
    expect_error("SPEC a.B\nEVENTS\n e: m();\nORDER\n e, ghost", "unknown label")


def test_constraint_undeclared_object():
    expect_error(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\nCONSTRAINTS\n y >= 1;",
        "undeclared object 'y'",
    )


def test_length_on_non_sized():
    expect_error(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\nCONSTRAINTS\n length[x] >= 1;",
        "non-sized",
    )


def test_part_on_non_string():
    expect_error(
        "SPEC a.B\nOBJECTS\n bytes b;\nEVENTS\n e: m(b);\n"
        'CONSTRAINTS\n part(0, "/", b) == "AES";',
        "non-string",
    )


def test_value_set_type_mismatch():
    expect_error(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\n"
        'CONSTRAINTS\n x in {"A", "B"};',
        "constrains object of type",
    )


def test_mixed_literal_set():
    expect_error(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\n"
        'CONSTRAINTS\n x in {1, "two"};',
        "mixes literal types",
    )


def test_callto_unknown_label():
    expect_error(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\nCONSTRAINTS\n callTo[ghost];",
        "unknown label",
    )


def test_predicate_undeclared_object():
    expect_error(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\nENSURES\n done[ghost];",
        "undeclared object 'ghost'",
    )


def test_after_unknown_event():
    expect_error(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\nENSURES\n done[x] after ghost;",
        "unknown event",
    )


def test_predicate_literals_and_wildcards_allowed():
    check(
        "SPEC a.B\nOBJECTS\n int x;\nEVENTS\n e: m(x);\n"
        'ENSURES\n done[this, _, 128, "AES"];'
    )
