"""Concurrent engine behaviour: thread safety, single-flight, ordering.

These tests pin the concurrency contract of the resident engine layer:
one :class:`CryptoGenEngine` under many threads never corrupts state
or raises, N concurrent requests needing the same uncompiled rule
trigger exactly one DFA build (single-flight), and the socket server
answers each connection strictly in request order no matter how the
shared worker pool interleaves execution.
"""

from __future__ import annotations

import json
import shutil
import socket as socketlib
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.crysl import RuleSet
from repro.engine import (
    AnalyzeRequest,
    CryptoGenEngine,
    EngineServer,
    GenerateRequest,
)
from repro.usecases import use_case

TEMPLATE = str(use_case(1).template_path())
THREADS = 16


def _cold_engine() -> CryptoGenEngine:
    """A private, cold engine with the result cache out of the way."""
    return CryptoGenEngine(ruleset=RuleSet.bundled(), result_cache_size=0)


class TestSingleFlight:
    def test_concurrent_cold_requests_compile_each_rule_once(self):
        # Serial baseline: how many DFA builds one cold generate costs.
        with _cold_engine() as baseline_engine:
            baseline = baseline_engine.generate(
                GenerateRequest(template=TEMPLATE)
            )
            assert baseline.ok and baseline.dfa_builds > 0

        engine = _cold_engine()
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            results = list(
                pool.map(
                    lambda _: engine.generate(
                        GenerateRequest(template=TEMPLATE)
                    ),
                    range(THREADS),
                )
            )
        assert all(r.ok for r in results)
        # Single-flight proof: 16 simultaneous cold requests build each
        # DFA exactly once — the global counter matches the serial run.
        assert engine.ruleset.compile_stats.dfa_builds == baseline.dfa_builds
        # Per-request attribution agrees: the winning threads' delta
        # sinks account for every build, the waiters record zero.
        assert sum(r.dfa_builds for r in results) == baseline.dfa_builds
        assert engine.requests == THREADS
        engine.close()

    def test_result_cache_serves_concurrent_repeats_without_builds(self):
        engine = CryptoGenEngine(ruleset=RuleSet.bundled())
        first = engine.generate(GenerateRequest(template=TEMPLATE))
        assert first.ok
        builds_before = engine.ruleset.compile_stats.dfa_builds
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            results = list(
                pool.map(
                    lambda _: engine.generate(
                        GenerateRequest(template=TEMPLATE)
                    ),
                    range(THREADS),
                )
            )
        assert all(r.ok and r.cached and r.dfa_builds == 0 for r in results)
        assert engine.ruleset.compile_stats.dfa_builds == builds_before
        assert engine.result_cache.hits >= THREADS
        engine.close()


class TestMixedStress:
    @pytest.fixture()
    def rules_copy(self, tmp_path):
        directory = tmp_path / "rules"
        directory.mkdir()
        for path in sorted(Path("src/repro/rules").glob("*.crysl")):
            shutil.copy(path, directory / path.name)
        return directory

    def test_sixteen_threads_mixed_ops(self, rules_copy):
        engine = CryptoGenEngine(rules_dir=rules_copy)
        analyze_source = engine.generate(
            GenerateRequest(template=TEMPLATE)
        ).module.source
        errors: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                for round_no in range(3):
                    which = (index + round_no) % 3
                    if which == 0:
                        result = engine.generate(
                            GenerateRequest(template=TEMPLATE)
                        )
                        assert result.ok, result.error
                    elif which == 1:
                        result = engine.analyze(
                            AnalyzeRequest(
                                sources={"m.py": analyze_source}
                            )
                        )
                        assert result.ok, result.error
                    else:
                        report = engine.refresh_rules()
                        assert report is not None
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        # The cumulative record stayed coherent under the stampede.
        assert engine.diagnostics.counter("repository.refreshes") > 0
        engine.close()


class TestPerConnectionOrdering:
    def _start_server(self, tmp_path) -> tuple[EngineServer, Path, threading.Thread]:
        path = tmp_path / "engine.sock"
        server = EngineServer(CryptoGenEngine(), workers=4)
        thread = threading.Thread(
            target=server.serve_socket, args=(path,), daemon=True
        )
        thread.start()
        for _ in range(200):
            if path.exists():
                break
            thread.join(0.05)
        assert path.exists()
        return server, path, thread

    def test_two_pipelined_clients_get_ordered_responses(self, tmp_path):
        server, path, thread = self._start_server(tmp_path)
        per_client = 10

        def client(tag: str) -> list[dict]:
            sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            sock.connect(str(path))
            payload = "".join(
                json.dumps({"id": f"{tag}-{n}", "op": "ping"}) + "\n"
                for n in range(per_client)
            )
            sock.sendall(payload.encode())
            reader = sock.makefile("r", encoding="utf-8")
            responses = [
                json.loads(reader.readline()) for _ in range(per_client)
            ]
            sock.close()
            return responses

        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(client, tag) for tag in ("a", "b")]
            all_responses = [f.result(timeout=60) for f in futures]

        for tag, responses in zip(("a", "b"), all_responses):
            # Responses arrive in request order, with per-connection
            # sequence numbers starting from 1.
            assert [r["id"] for r in responses] == [
                f"{tag}-{n}" for n in range(per_client)
            ]
            assert [r["seq"] for r in responses] == list(
                range(1, per_client + 1)
            )
            assert all(r["ok"] for r in responses)

        stop = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        stop.connect(str(path))
        stop.sendall(b'{"id": "stop", "op": "shutdown"}\n')
        stop.makefile("r", encoding="utf-8").readline()
        stop.close()
        thread.join(10.0)
        assert not thread.is_alive()
