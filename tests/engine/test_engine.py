"""The resident :class:`CryptoGenEngine` facade."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.engine import (
    AnalyzeRequest,
    CryptoGenEngine,
    EngineRequestError,
    GenerateRequest,
)
from repro.usecases import use_case

TEMPLATE = str(use_case(1).template_path())


@pytest.fixture(scope="module")
def engine():
    eng = CryptoGenEngine()
    yield eng
    eng.close()


class TestGenerate:
    def test_cold_then_warm(self, engine):
        first = engine.generate(GenerateRequest(template=TEMPLATE))
        assert first.ok and first.module is not None
        second = engine.generate(GenerateRequest(template=TEMPLATE))
        assert second.ok
        # Everything the template needs was compiled by the first
        # request; the second is entirely warm — in fact the whole
        # result comes out of the engine's memoized result cache.
        assert second.dfa_builds == 0
        assert second.warm
        assert second.cached
        assert second.module is first.module  # shared memoized module

    def test_hundred_requests_one_compile(self):
        # The acceptance bar: a resident engine serves 100 sequential
        # requests with exactly one ruleset compile — dfa.builds is
        # flat after request 1. A private cold ruleset keeps the test
        # hermetic (the shared bundled singleton may already be warm).
        from repro.crysl import RuleSet

        engine = CryptoGenEngine(ruleset=RuleSet.bundled())
        results = [
            engine.generate(GenerateRequest(template=TEMPLATE))
            for _ in range(100)
        ]
        assert all(r.ok for r in results)
        after_first = results[0].dfa_builds
        assert after_first > 0  # the one cold compile
        assert all(r.dfa_builds == 0 for r in results[1:])
        assert engine.ruleset.compile_stats.dfa_builds == after_first
        assert engine.requests == 100
        engine.close()

    def test_inline_source(self, engine):
        source = Path(TEMPLATE).read_text(encoding="utf-8")
        result = engine.generate(
            GenerateRequest(source=source, name="inline.py")
        )
        assert result.ok
        assert result.module.template_class == use_case(1).template_class

    def test_empty_request_is_structured_error(self, engine):
        result = engine.generate(GenerateRequest())
        assert not result.ok
        assert result.error.type == "EngineRequestError"

    def test_missing_template_is_structured_error(self, engine):
        result = engine.generate(
            GenerateRequest(template="/nonexistent/tpl.py")
        )
        assert not result.ok
        assert result.error.type in ("FileNotFoundError", "OSError")

    def test_request_ids_and_trace(self, engine):
        # A never-seen-before source keeps the result cache out of the
        # way: this test is about the full pipeline's span tree.
        source = (
            Path(TEMPLATE).read_text(encoding="utf-8") + "\n# trace probe\n"
        )
        result = engine.generate(
            GenerateRequest(source=source, name="trace_probe.py")
        )
        assert result.request_id.startswith("req-")
        tree = result.trace.to_dict()
        assert tree["request_id"] == result.request_id
        names = [span["name"] for span in tree["spans"]]
        assert names[0] == "request:generate"
        assert "stage:collect" in names and "stage:emit" in names
        # Stage spans nest under the request span.
        root = next(s for s in tree["spans"] if s["name"] == "request:generate")
        child = next(s for s in tree["spans"] if s["name"] == "stage:collect")
        assert child["parent_id"] == root["span_id"]

    def test_explicit_request_id_wins(self, engine):
        result = engine.generate(
            GenerateRequest(template=TEMPLATE, request_id="mine-7")
        )
        assert result.request_id == "mine-7"

    def test_to_dict_shape(self, engine):
        payload = engine.generate(GenerateRequest(template=TEMPLATE)).to_dict()
        assert payload["ok"] and payload["op"] == "generate"
        assert payload["warm"] is True and payload["dfa_builds"] == 0
        assert "source" in payload["result"]
        assert payload["trace"]["spans"]


class TestGenerateMany:
    def test_serial_batch(self, engine):
        results = engine.generate_many([TEMPLATE, TEMPLATE])
        assert len(results) == 2
        assert all(r.ok for r in results)

    def test_batch_isolates_failures(self, engine):
        results = engine.generate_many([TEMPLATE, "/nonexistent/tpl.py"])
        assert results[0].ok
        assert not results[1].ok

    def test_parallel_batches_reuse_one_warm_pool(self):
        engine = CryptoGenEngine()
        first = engine.generate_many([TEMPLATE, TEMPLATE], jobs=2)
        assert all(r.ok for r in first)
        pool = engine._pool
        assert pool is not None  # created by the first parallel batch
        second = engine.generate_many([TEMPLATE, TEMPLATE], jobs=2)
        assert all(r.ok for r in second)
        assert engine._pool is pool  # resident, not rebuilt per batch
        engine.close()
        assert engine._pool is None


class TestAnalyze:
    def test_analyze_generated_module(self, engine):
        generated = engine.generate(GenerateRequest(template=TEMPLATE))
        result = engine.analyze(
            AnalyzeRequest(sources={"m.py": generated.module.source})
        )
        assert result.ok
        assert result.is_secure

    def test_analyze_paths(self, engine, tmp_path):
        generated = engine.generate(GenerateRequest(template=TEMPLATE))
        target = tmp_path / "m.py"
        target.write_text(generated.module.source, encoding="utf-8")
        result = engine.analyze(AnalyzeRequest(paths=(str(tmp_path),)))
        assert result.ok and result.is_secure

    def test_syntax_error_is_structured(self, engine):
        result = engine.analyze(
            AnalyzeRequest(sources={"bad.py": "def f(:\n"})
        )
        assert not result.ok
        assert result.error.type == "SyntaxError"

    def test_empty_request_is_structured_error(self, engine):
        result = engine.analyze(AnalyzeRequest())
        assert not result.ok
        assert result.error.type == "EngineRequestError"


class TestConstruction:
    def test_rules_dir_and_ruleset_conflict(self, tmp_path):
        from repro.crysl import RuleSet

        with pytest.raises(ValueError):
            CryptoGenEngine(
                rules_dir=tmp_path, ruleset=RuleSet.bundled()
            )

    def test_cache_dir_engine_warm_starts_second_engine(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with CryptoGenEngine(cache_dir=cache_dir) as first:
            assert first.generate(GenerateRequest(template=TEMPLATE)).ok
        with CryptoGenEngine(cache_dir=cache_dir) as second:
            result = second.generate(GenerateRequest(template=TEMPLATE))
            assert result.ok
            assert result.dfa_builds == 0  # loaded from the disk store

    def test_refresh_without_repository_raises(self):
        engine = CryptoGenEngine()
        with pytest.raises(EngineRequestError):
            engine.refresh_rules()


class TestRepositoryBackedEngine:
    @pytest.fixture()
    def rules_copy(self, tmp_path):
        directory = tmp_path / "rules"
        directory.mkdir()
        for path in sorted(Path("src/repro/rules").glob("*.crysl")):
            shutil.copy(path, directory / path.name)
        return directory

    def test_refresh_recompiles_only_the_edit(self, rules_copy):
        engine = CryptoGenEngine(rules_dir=rules_copy)
        first = engine.generate(GenerateRequest(template=TEMPLATE))
        assert first.ok and first.dfa_builds > 0

        target = rules_copy / "SecureRandom.crysl"
        text = target.read_text(encoding="utf-8")
        target.write_text(text.replace("ENSURES", "ENSURES "), encoding="utf-8")
        report = engine.refresh_rules()
        assert report.changed == ("repro.jca.SecureRandom",)

        again = engine.generate(GenerateRequest(template=TEMPLATE))
        assert again.ok
        # Only the edited rule's automaton is rebuilt; the other rules
        # carried their artefacts across the refresh.
        assert again.dfa_builds == 1
        assert engine.diagnostics.counter("repository.refreshes") == 1
        engine.close()

    def test_clean_refresh_keeps_services(self, rules_copy):
        engine = CryptoGenEngine(rules_dir=rules_copy)
        engine.generate(GenerateRequest(template=TEMPLATE))
        context_before = engine.context
        report = engine.refresh_rules()
        assert not report.dirty
        assert engine.context is context_before  # no rebuild
        engine.close()

    def test_refresh_invalidates_stale_summaries(self, rules_copy, tmp_path):
        """Summaries computed under the old rule set are dropped on a
        dirty refresh; the next analyze re-summarizes under the new
        fingerprint (and keys under the old one are unreachable)."""
        engine = CryptoGenEngine(rules_dir=rules_copy)
        target = tmp_path / "m.py"
        target.write_text("def f():\n    return 1\n", encoding="utf-8")
        first = engine.analyze(AnalyzeRequest(paths=(str(target),)))
        assert first.ok and first.reanalyzed_functions > 0
        warm = engine.analyze(AnalyzeRequest(paths=(str(target),)))
        assert warm.reanalyzed_functions == 0

        rule = rules_copy / "SecureRandom.crysl"
        text = rule.read_text(encoding="utf-8")
        rule.write_text(text.replace("ENSURES", "ENSURES "), encoding="utf-8")
        report = engine.refresh_rules()
        assert report.dirty
        assert engine.summary_cache.invalidations > 0

        after = engine.analyze(AnalyzeRequest(paths=(str(target),)))
        assert after.ok and after.reanalyzed_functions > 0
        engine.close()

    def test_cumulative_diagnostics_survive_refresh(self, rules_copy):
        engine = CryptoGenEngine(rules_dir=rules_copy)
        engine.generate(GenerateRequest(template=TEMPLATE))
        runs_before = engine.diagnostics.counter("compiled_rules.misses")
        assert runs_before > 0
        target = rules_copy / "SecureRandom.crysl"
        text = target.read_text(encoding="utf-8")
        target.write_text(text.replace("ENSURES", "ENSURES "), encoding="utf-8")
        engine.refresh_rules()
        engine.generate(GenerateRequest(template=TEMPLATE))
        # One record across the refresh: counters only ever grow.
        assert (
            engine.diagnostics.counter("compiled_rules.misses") > runs_before
        )
        engine.close()


class TestIncrementalAnalyze:
    SOURCES = {
        "helpers.py": "def make_iv():\n    return b'0' * 16\n",
        "app.py": (
            "from helpers import make_iv\n"
            "def run():\n"
            "    iv = make_iv()\n"
            "    return iv\n"
        ),
        "other.py": "def standalone():\n    return 1\n",
    }

    def test_second_analyze_reanalyzes_nothing(self):
        engine = CryptoGenEngine()
        cold = engine.analyze(AnalyzeRequest(sources=self.SOURCES))
        assert cold.reanalyzed_functions == cold.analysis.total_functions > 0
        warm = engine.analyze(AnalyzeRequest(sources=self.SOURCES))
        assert warm.reanalyzed_functions == 0
        assert warm.analysis.to_dict() == cold.analysis.to_dict()
        # the resident cache answered every lookup of the second request
        stats = engine.summary_cache.to_dict()
        assert stats["hits"] == warm.analysis.total_functions
        assert stats["hit_rate"] == 0.5  # cold misses + warm hits
        engine.close()

    def test_edit_reanalyzes_only_the_cone(self):
        engine = CryptoGenEngine()
        engine.analyze(AnalyzeRequest(sources=self.SOURCES))
        edited = {
            **self.SOURCES,
            "helpers.py": "def make_iv():\n    return b'1' * 16\n",
        }
        after = engine.analyze(AnalyzeRequest(sources=edited))
        # helpers.make_iv plus its caller app.run; other.standalone hits
        assert 0 < after.reanalyzed_functions < after.analysis.total_functions
        engine.close()

    def test_reanalyzed_functions_in_to_dict(self):
        engine = CryptoGenEngine()
        result = engine.analyze(AnalyzeRequest(sources=self.SOURCES))
        payload = result.to_dict()
        assert payload["reanalyzed_functions"] == result.reanalyzed_functions
        assert (
            payload["result"]["total_functions"]
            == result.analysis.total_functions
        )
        engine.close()

    def test_disk_backed_summary_cache_warms_a_fresh_engine(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with CryptoGenEngine(cache_dir=cache_dir) as first:
            cold = first.analyze(AnalyzeRequest(sources=self.SOURCES))
            assert cold.reanalyzed_functions > 0
            assert first.summary_cache.persistent
        with CryptoGenEngine(cache_dir=cache_dir) as second:
            warm = second.analyze(AnalyzeRequest(sources=self.SOURCES))
            assert warm.reanalyzed_functions == 0
            assert second.summary_cache.to_dict()["disk_hits"] > 0


class TestExpandAnalyzePaths:
    def test_deduplicates_overlapping_entries(self, tmp_path):
        from repro.engine import expand_analyze_paths

        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        expanded = expand_analyze_paths(
            [tmp_path, tmp_path / "a.py", tmp_path]
        )
        assert expanded == sorted(
            [tmp_path / "a.py", tmp_path / "b.py"], key=str
        )

    def test_result_is_sorted_regardless_of_argument_order(self, tmp_path):
        from repro.engine import expand_analyze_paths

        sub = tmp_path / "sub"
        sub.mkdir()
        (tmp_path / "z.py").write_text("z = 1\n")
        (sub / "a.py").write_text("a = 1\n")
        forward = expand_analyze_paths([tmp_path / "z.py", sub])
        backward = expand_analyze_paths([sub, tmp_path / "z.py"])
        assert forward == backward == sorted(forward, key=str)
