"""The fault-tolerance layer: supervisor, breakers, admission, chaos.

Four promises under test, bottom-up:

* the :mod:`repro.faults` injection harness is deterministic and inert
  when unconfigured;
* the :class:`SupervisedWorkerPool` absorbs ``BrokenProcessPool`` —
  restart with backoff, bounded retry, recycling, degrade-to-serial;
* the engine's circuit breakers fail poisoned inputs fast and recover
  via half-open probes or ``refresh-rules``;
* the serve layer sheds load structurally (``OverloadedError`` with
  ``retry_after_ms``, deadline shedding) and a real socket server
  survives a seeded chaos storm — worker crashes, flaky disk, slow
  tasks — with zero non-structured failures and a healthy final
  ``health``.
"""

from __future__ import annotations

import io
import json
import socket as socketlib
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import pytest

from repro import faults
from repro.codegen import parallel
from repro.codegen.parallel import PoolStalledError, TaskOutcome
from repro.engine import (
    BreakerConfig,
    BreakerRegistry,
    CircuitOpenError,
    CryptoGenEngine,
    EngineServer,
    GenerateRequest,
    SupervisedWorkerPool,
    SupervisorConfig,
)
from repro.engine import supervisor as supervisor_module
from repro.usecases import use_case

TEMPLATE = str(use_case(1).template_path())
TEMPLATE_2 = str(use_case(2).template_path())
TEMPLATE_3 = str(use_case(3).template_path())

ANALYZE_SOURCES = {
    "helpers.py": "def make_iv():\n    return b'0' * 16\n",
    "app.py": (
        "from helpers import make_iv\n"
        "def run():\n"
        "    return make_iv()\n"
    ),
}


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test starts and ends with fault injection disarmed."""
    faults.reset()
    yield
    faults.reset()


def _run(server: EngineServer, requests: list) -> list[dict]:
    lines = [r if isinstance(r, str) else json.dumps(r) for r in requests]
    out = io.StringIO()
    server.serve_stream(iter(line + "\n" for line in lines), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


# ---------------------------------------------------------------------------
# the fault-injection harness itself
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_parses_points_probabilities_and_seed(self):
        plan = faults.FaultPlan.from_spec(
            "worker_crash:0.2, disk_io:0.1,seed=42"
        )
        assert plan.probabilities == {"worker_crash": 0.2, "disk_io": 0.1}
        assert plan.seed == 42

    def test_unknown_point_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="unknown fault point"):
            faults.FaultPlan.from_spec("reactor_meltdown:0.5")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(faults.FaultSpecError, match=r"\[0, 1\]"):
            faults.FaultPlan.from_spec("disk_io:1.5")

    def test_malformed_entry_rejected(self):
        with pytest.raises(faults.FaultSpecError):
            faults.FaultPlan.from_spec("disk_io=0.5")

    def test_seeded_plans_draw_identically(self):
        draws = []
        for _ in range(2):
            plan = faults.FaultPlan.from_spec("disk_io:0.5,seed=7")
            draws.append([plan.should_fire("disk_io") for _ in range(64)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_fired_counts_accumulate(self):
        plan = faults.FaultPlan({"disk_io": 1.0})
        for _ in range(3):
            assert plan.should_fire("disk_io")
        assert plan.to_dict()["fired"]["disk_io"] == 3

    def test_unconfigured_helpers_are_noops(self):
        faults.configure(None)
        assert not faults.enabled()
        faults.maybe_crash()
        faults.maybe_raise_os()
        faults.maybe_sleep()
        faults.maybe_raise("compile_error", RuntimeError("never"))

    def test_environment_spec_is_lazily_loaded(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "slow_task:1.0,seed=1")
        faults.reset()
        assert faults.enabled()
        assert faults.active().probabilities == {"slow_task": 1.0}

    def test_configure_raises_on_demand(self):
        faults.configure("compile_error:1.0")
        marker = RuntimeError("injected")
        with pytest.raises(RuntimeError, match="injected"):
            faults.maybe_raise("compile_error", marker)


# ---------------------------------------------------------------------------
# the supervised worker pool (unit level, faked raw pool)
# ---------------------------------------------------------------------------


class _FakeGenerator:
    """Stands in for the real generator in serial-fallback paths."""

    def generate_from_file(self, path):
        return f"gen:{path}"

    def generate_from_source(self, source, name):
        return f"gen:{name}"


def _install_fake_pool(monkeypatch, behaviors: list, rss_mb: float = 10.0):
    """Replace the raw WorkerPool with a scripted fake.

    ``behaviors`` is consumed one entry per ``run_tasks`` call:
    ``"crash"`` raises ``BrokenProcessPool``, ``"stall"`` raises
    ``PoolStalledError``, anything else succeeds. Returns a counters
    dict (``built``/``runs``/``closed``/``killed``).
    """
    calls = {"built": 0, "runs": 0, "closed": 0, "killed": 0}

    class FakePool:
        def __init__(self, generator, jobs):
            calls["built"] += 1
            self.jobs = jobs

        def run_tasks(self, specs, *, stall_timeout=None):
            calls["runs"] += 1
            behavior = behaviors.pop(0) if behaviors else "ok"
            if behavior == "crash":
                raise BrokenProcessPool("injected worker death")
            if behavior == "stall":
                raise PoolStalledError("injected wedged pool")
            return [
                TaskOutcome(i, f"module-{i}", None, rss_mb=rss_mb)
                for i in range(len(specs))
            ]

        def close(self):
            calls["closed"] += 1

        def kill(self):
            calls["killed"] += 1

    monkeypatch.setattr(supervisor_module, "WorkerPool", FakePool)
    return calls


FAST_BACKOFF = dict(backoff_base_seconds=0.001, backoff_max_seconds=0.002)
SPECS = [("path", "a.py", "a.py"), ("path", "b.py", "b.py")]


class TestSupervisedWorkerPool:
    def test_restart_after_worker_death_then_success(self, monkeypatch):
        calls = _install_fake_pool(monkeypatch, ["crash", "ok"])
        pool = SupervisedWorkerPool(
            _FakeGenerator(), 2, config=SupervisorConfig(**FAST_BACKOFF)
        )
        outcomes = pool.run_tasks(SPECS)
        assert [o.module for o in outcomes] == ["module-0", "module-1"]
        assert pool.restarts == 1 and pool.retries == 1
        assert calls["built"] == 2  # dead pool discarded, fresh one built
        assert not pool.degraded
        assert pool.state == "running"

    def test_degrades_to_serial_when_budget_exhausted(self, monkeypatch):
        _install_fake_pool(monkeypatch, ["crash", "crash"])
        pool = SupervisedWorkerPool(
            _FakeGenerator(),
            2,
            config=SupervisorConfig(max_restarts=1, **FAST_BACKOFF),
        )
        outcomes = pool.run_tasks(SPECS)
        # The batch still completed — in-process, crash-immune.
        assert all(o.in_process for o in outcomes)
        assert [o.module for o in outcomes] == ["gen:a.py", "gen:b.py"]
        assert pool.degraded and pool.state == "degraded"
        assert pool.degraded_batches == 1
        assert pool.to_dict()["degraded"] is True

    def test_successful_batch_clears_degraded(self, monkeypatch):
        _install_fake_pool(monkeypatch, ["crash", "crash", "ok"])
        pool = SupervisedWorkerPool(
            _FakeGenerator(),
            2,
            config=SupervisorConfig(max_restarts=1, **FAST_BACKOFF),
        )
        pool.run_tasks(SPECS)
        assert pool.degraded
        pool.run_tasks(SPECS)
        assert not pool.degraded

    def test_probe_recovers_a_degraded_pool(self, monkeypatch):
        _install_fake_pool(monkeypatch, ["crash", "crash"])
        pool = SupervisedWorkerPool(
            _FakeGenerator(),
            2,
            config=SupervisorConfig(max_restarts=1, **FAST_BACKOFF),
        )
        pool.run_tasks(SPECS)
        assert pool.degraded
        assert pool.probe() is True
        assert not pool.degraded

    def test_recycles_after_task_budget(self, monkeypatch):
        calls = _install_fake_pool(monkeypatch, [])
        pool = SupervisedWorkerPool(
            _FakeGenerator(),
            1,
            config=SupervisorConfig(max_tasks_per_worker=1, **FAST_BACKOFF),
        )
        pool.run_tasks(SPECS)  # 2 tasks through a 1-worker pool
        pool.run_tasks(SPECS)  # budget exceeded -> planned rebuild first
        assert pool.recycles == 1
        assert calls["built"] == 2

    def test_recycles_on_memory_ceiling(self, monkeypatch):
        calls = _install_fake_pool(monkeypatch, [], rss_mb=512.0)
        pool = SupervisedWorkerPool(
            _FakeGenerator(),
            1,
            config=SupervisorConfig(worker_memory_mb=256, **FAST_BACKOFF),
        )
        pool.run_tasks(SPECS)
        pool.run_tasks(SPECS)
        assert pool.recycles == 1
        assert calls["built"] == 2

    def test_backoff_is_bounded(self):
        pool = SupervisedWorkerPool(
            _FakeGenerator(),
            1,
            config=SupervisorConfig(
                backoff_base_seconds=0.05, backoff_max_seconds=0.2, jitter=0.25
            ),
        )
        for attempt in range(10):
            sleep = pool._backoff(attempt)
            assert 0.0 <= sleep <= 0.2 * 1.25

    def test_stalled_pool_is_killed_not_closed_and_restarted(
        self, monkeypatch
    ):
        # A wedged pool still has live workers — joining them would
        # hang forever, so the supervisor must kill() it.
        calls = _install_fake_pool(monkeypatch, ["stall", "ok"])
        pool = SupervisedWorkerPool(
            _FakeGenerator(), 2, config=SupervisorConfig(**FAST_BACKOFF)
        )
        outcomes = pool.run_tasks(SPECS)
        assert [o.module for o in outcomes] == ["module-0", "module-1"]
        assert pool.restarts == 1
        assert calls["killed"] == 1 and calls["closed"] == 0
        assert not pool.degraded

    def test_persistent_stall_degrades_to_serial(self, monkeypatch):
        _install_fake_pool(monkeypatch, ["stall", "stall"])
        pool = SupervisedWorkerPool(
            _FakeGenerator(),
            2,
            config=SupervisorConfig(max_restarts=1, **FAST_BACKOFF),
        )
        outcomes = pool.run_tasks(SPECS)
        assert all(o.in_process for o in outcomes)
        assert pool.degraded


# ---------------------------------------------------------------------------
# pool plumbing: fork safety and the stall watchdog
# ---------------------------------------------------------------------------


class TestPoolPlumbing:
    def test_pool_never_forks_a_multithreaded_parent(self):
        # Regression guard: the serve daemon is multithreaded, and
        # fork-after-threads intermittently deadlocks workers before
        # they pick up their first task (the executor then waits on
        # the future forever). The pool must use a start method that
        # does not fork the parent directly.
        assert parallel.pool_mp_context().get_start_method() != "fork"

    def test_stall_watchdog_raises_instead_of_waiting_forever(
        self, monkeypatch
    ):
        # A thread executor sees the monkeypatched task directly (no
        # pickling), so a never-finishing task models a wedged worker.
        from concurrent.futures import ThreadPoolExecutor

        release = threading.Event()

        def wedged_task(index, kind, payload, name):
            release.wait(5.0)
            return index, None, None, None, 0.0

        monkeypatch.setattr(parallel, "_run_task", wedged_task)
        with ThreadPoolExecutor(max_workers=1) as executor:
            started = time.monotonic()
            with pytest.raises(PoolStalledError):
                parallel.run_specs_on_executor(
                    executor, SPECS, stall_timeout=0.05
                )
            assert time.monotonic() - started < 2.0
            release.set()  # let the wedged task finish so shutdown joins

    def test_watchdog_resets_on_progress(self, monkeypatch):
        # Slow-but-progressing batches must not trip the watchdog: the
        # clock is per-completion, not per-batch.
        from concurrent.futures import ThreadPoolExecutor

        def slow_task(index, kind, payload, name):
            time.sleep(0.04)
            return index, f"module-{index}", None, None, 0.0

        monkeypatch.setattr(parallel, "_run_task", slow_task)
        specs = [("path", f"{n}.py", f"{n}.py") for n in range(4)]
        with ThreadPoolExecutor(max_workers=1) as executor:
            # 4 serial tasks x 40ms ≈ 160ms total, but no single gap
            # exceeds the 60ms stall budget.
            outcomes = parallel.run_specs_on_executor(
                executor, specs, stall_timeout=0.06
            )
        assert [o.module for o in outcomes] == [
            f"module-{n}" for n in range(4)
        ]


# ---------------------------------------------------------------------------
# circuit breakers (registry unit level)
# ---------------------------------------------------------------------------


class TestBreakerRegistry:
    KEY = ("generate", "a" * 64)

    def _tripped(self, registry: BreakerRegistry) -> None:
        for _ in range(registry.config.failure_threshold):
            registry.record_failure(self.KEY)

    def test_trips_after_consecutive_failures(self):
        registry = BreakerRegistry(BreakerConfig(failure_threshold=3))
        registry.record_failure(self.KEY)
        registry.record_failure(self.KEY)
        registry.admit(self.KEY)  # still closed
        registry.record_failure(self.KEY)
        assert registry.state_of(self.KEY) == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            registry.admit(self.KEY)
        assert excinfo.value.retry_after_ms > 0

    def test_success_resets_the_failure_count(self):
        registry = BreakerRegistry(BreakerConfig(failure_threshold=2))
        registry.record_failure(self.KEY)
        registry.record_success(self.KEY)
        registry.record_failure(self.KEY)
        assert registry.state_of(self.KEY) == "closed"

    def test_half_open_admits_one_probe_then_closes_on_success(self):
        registry = BreakerRegistry(
            BreakerConfig(failure_threshold=2, cooldown_seconds=0.01)
        )
        self._tripped(registry)
        time.sleep(0.02)
        registry.admit(self.KEY)  # the probe slot
        assert registry.state_of(self.KEY) == "half-open"
        # A second caller while the probe is in flight still fails fast.
        with pytest.raises(CircuitOpenError):
            registry.admit(self.KEY)
        registry.record_success(self.KEY)
        assert registry.state_of(self.KEY) == "closed"
        registry.admit(self.KEY)

    def test_half_open_probe_failure_reopens(self):
        registry = BreakerRegistry(
            BreakerConfig(failure_threshold=2, cooldown_seconds=0.01)
        )
        self._tripped(registry)
        time.sleep(0.02)
        registry.admit(self.KEY)
        registry.record_failure(self.KEY)
        assert registry.state_of(self.KEY) == "open"
        with pytest.raises(CircuitOpenError):
            registry.admit(self.KEY)

    def test_reset_drops_everything(self):
        registry = BreakerRegistry(BreakerConfig(failure_threshold=1))
        self._tripped(registry)
        assert registry.reset() == 1
        registry.admit(self.KEY)
        assert registry.to_dict()["resets"] == 1

    def test_registry_is_bounded(self):
        registry = BreakerRegistry(
            BreakerConfig(failure_threshold=1, max_breakers=2)
        )
        for n in range(5):
            registry.record_failure(("generate", f"fingerprint-{n}"))
        assert registry.to_dict()["tracked"] <= 2

    def test_snapshot_reports_open_keys(self):
        registry = BreakerRegistry(BreakerConfig(failure_threshold=1))
        registry.record_failure(self.KEY)
        snapshot = registry.to_dict()
        assert snapshot["by_state"]["open"] == 1
        assert snapshot["open"][0]["op"] == "generate"


# ---------------------------------------------------------------------------
# circuit breakers through the engine (the acceptance shape)
# ---------------------------------------------------------------------------

BAD_SOURCE = "this is not a python template {{{"


class TestEngineBreakers:
    @pytest.fixture()
    def engine(self):
        eng = CryptoGenEngine(
            breaker_config=BreakerConfig(
                failure_threshold=5, cooldown_seconds=60.0
            )
        )
        yield eng
        eng.close()

    def _fail_once(self, engine) -> object:
        result = engine.generate(
            GenerateRequest(source=BAD_SOURCE, name="bad.py")
        )
        assert result.error is not None
        return result

    def test_five_failures_open_the_breaker_then_fast_fail(self, engine):
        for _ in range(5):
            result = self._fail_once(engine)
            assert result.error.type != "CircuitOpenError"
        # Tripped: the same input now fails fast, structurally.
        fast = self._fail_once(engine)
        assert fast.error.type == "CircuitOpenError"
        assert fast.error.retryable is True
        assert fast.error.retry_after_ms > 0
        # Fast means fast: no pipeline work, sub-10ms (best of 5 to
        # keep a loaded CI box from flaking the assertion).
        timings = []
        for _ in range(5):
            started = time.perf_counter()
            self._fail_once(engine)
            timings.append(time.perf_counter() - started)
        assert min(timings) < 0.010

    def test_other_inputs_are_unaffected(self, engine):
        for _ in range(6):
            self._fail_once(engine)
        good = engine.generate(GenerateRequest(template=TEMPLATE))
        assert good.error is None

    def test_half_open_probe_closes_after_transient_failures(self):
        engine = CryptoGenEngine(
            breaker_config=BreakerConfig(
                failure_threshold=3, cooldown_seconds=0.05
            )
        )
        try:
            # A *transient* poison: the injected compile fault fails a
            # perfectly good template until the fault is disarmed.
            faults.configure("compile_error:1.0")
            for _ in range(3):
                result = engine.generate(GenerateRequest(template=TEMPLATE))
                assert result.error is not None
            tripped = engine.generate(GenerateRequest(template=TEMPLATE))
            assert tripped.error.type == "CircuitOpenError"
            faults.reset()
            time.sleep(0.06)
            # Cooldown elapsed: this request is the half-open probe; it
            # succeeds and closes the breaker.
            probe = engine.generate(GenerateRequest(template=TEMPLATE))
            assert probe.error is None
            again = engine.generate(GenerateRequest(template=TEMPLATE))
            assert again.error is None
        finally:
            engine.close()

    def test_refresh_rules_resets_breakers(self, tmp_path):
        import shutil

        rules = tmp_path / "rules"
        rules.mkdir()
        for path in sorted(Path("src/repro/rules").glob("*.crysl")):
            shutil.copy(path, rules / path.name)
        engine = CryptoGenEngine(
            rules_dir=rules,
            breaker_config=BreakerConfig(
                failure_threshold=2, cooldown_seconds=600.0
            ),
        )
        try:
            for _ in range(2):
                result = engine.generate(
                    GenerateRequest(source=BAD_SOURCE, name="bad.py")
                )
                assert result.error is not None
            tripped = engine.generate(
                GenerateRequest(source=BAD_SOURCE, name="bad.py")
            )
            assert tripped.error.type == "CircuitOpenError"
            engine.refresh_rules()
            # The operator said "try again": the pipeline actually runs.
            retried = engine.generate(
                GenerateRequest(source=BAD_SOURCE, name="bad.py")
            )
            assert retried.error is not None
            assert retried.error.type != "CircuitOpenError"
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# admission control, deadline shedding, health (serve layer)
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def _slow_server(self, monkeypatch, **kwargs) -> EngineServer:
        server = EngineServer(CryptoGenEngine(), **kwargs)
        real_generate = server.engine.generate

        def slow_generate(request):
            time.sleep(0.3)
            return real_generate(request)

        monkeypatch.setattr(server.engine, "generate", slow_generate)
        return server

    def test_overflow_is_rejected_with_retry_hint(self, monkeypatch):
        server = self._slow_server(monkeypatch, workers=4, max_pending=2)
        responses = _run(
            server,
            [
                {"id": n, "op": "generate", "template": TEMPLATE}
                for n in range(1, 5)
            ]
            + [{"id": 99, "op": "ping"}],
        )
        admitted = responses[:2]
        rejected = responses[2:4]
        ping = responses[4]
        assert all(r["ok"] for r in admitted)
        for response in rejected:
            assert response["ok"] is False
            assert response["error"]["type"] == "OverloadedError"
            assert response["error"]["retryable"] is True
            assert response["error"]["retry_after_ms"] >= 50.0
        # Control ops bypass admission: the overloaded server stays
        # observable.
        assert ping["ok"] and ping["op"] == "ping"
        # Ordered responses survived the rejections.
        assert [r["seq"] for r in responses] == [1, 2, 3, 4, 5]
        assert server.metrics.to_dict()["overloads"] == 2

    def test_per_connection_bound(self, monkeypatch):
        server = self._slow_server(
            monkeypatch, workers=4, max_pending_per_conn=1
        )
        responses = _run(
            server,
            [
                {"id": 1, "op": "generate", "template": TEMPLATE},
                {"id": 2, "op": "generate", "template": TEMPLATE},
            ],
        )
        assert responses[0]["ok"]
        assert responses[1]["error"]["type"] == "OverloadedError"

    def test_slots_are_released_after_completion(self, monkeypatch):
        server = self._slow_server(monkeypatch, workers=2, max_pending=1)
        first = _run(server, [{"id": 1, "op": "generate", "template": TEMPLATE}])
        assert first[0]["ok"]
        # serve_stream tears the pool down; a fresh stream on the same
        # server must get a fresh admission slot.
        assert server._pending_depth() == 0

    def test_queued_past_deadline_is_shed_without_running(self):
        server = EngineServer(CryptoGenEngine())
        try:
            response = server._execute(
                "ping",
                {"id": 1, "op": "ping"},
                deadline=time.monotonic() - 1.0,
            )
            assert response["ok"] is False
            assert response["error"]["type"] == "TimeoutError"
            assert "shed" in response["error"]["message"]
            assert server.metrics.to_dict()["shed"] == 1
        finally:
            server.engine.close()

    def test_deadline_ms_combines_with_server_timeout(self):
        server = EngineServer(CryptoGenEngine(), timeout=10.0)
        try:
            now = time.monotonic()
            tight = server._deadline_for({"op": "ping", "deadline_ms": 100})
            assert tight is not None and tight - now < 1.0
            loose = server._deadline_for({"op": "ping", "deadline_ms": 60000})
            assert loose is not None and 9.0 < loose - now <= 10.1
            assert server._deadline_for({"op": "ping", "deadline_ms": "bogus"})
            no_limit = EngineServer(CryptoGenEngine())
            assert no_limit._deadline_for({"op": "ping"}) is None
            no_limit.engine.close()
        finally:
            server.engine.close()


class TestHealthOp:
    def test_health_reports_healthy_baseline(self):
        server = EngineServer(
            CryptoGenEngine(), max_pending=8, max_pending_per_conn=2
        )
        [response] = _run(server, [{"id": 1, "op": "health"}])
        assert response["ok"]
        assert response["state"] == "healthy"
        assert response["degraded"] is False
        assert response["protocol"] == 3
        assert response["queue"]["max_pending"] == 8
        assert response["queue"]["max_pending_per_conn"] == 2
        assert response["breakers"]["tracked"] == 0
        assert response["server"]["overloads"] == 0

    def test_stats_carries_the_fault_tolerance_blocks(self):
        server = EngineServer(CryptoGenEngine())
        [response] = _run(server, [{"id": 1, "op": "stats"}])
        assert "admission" in response
        assert "breakers" in response
        assert response["degraded"] is False


# ---------------------------------------------------------------------------
# the chaos storm (acceptance): 4 clients, 200 requests, seeded faults
# ---------------------------------------------------------------------------

CHAOS_SPEC = "worker_crash:0.2,disk_io:0.1,slow_task:0.1,seed=1234"
CHAOS_CLIENTS = 4
CHAOS_PER_CLIENT = 50


def _start_socket_server(
    tmp_path: Path, engine: CryptoGenEngine, **kwargs
) -> tuple[EngineServer, Path, threading.Thread]:
    path = tmp_path / "chaos.sock"
    server = EngineServer(engine, **kwargs)
    thread = threading.Thread(
        target=server.serve_socket, args=(path,), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while not path.exists():
        assert time.monotonic() < deadline, "server socket never appeared"
        time.sleep(0.01)
    return server, path, thread


def _roundtrip(path: Path, requests: list[dict]) -> list[dict]:
    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.connect(str(path))
    sock.sendall("".join(json.dumps(r) + "\n" for r in requests).encode())
    reader = sock.makefile("r", encoding="utf-8")
    responses = [json.loads(reader.readline()) for _ in requests]
    sock.close()
    return responses


def _chaos_requests(tag: int) -> list[dict]:
    """One client's 50-request mix: generates, analyzes, pool batches."""
    requests = []
    for n in range(CHAOS_PER_CLIENT):
        request_id = f"c{tag}-{n}"
        if n % 25 == 7:
            # Batch generates route through the supervised process
            # pool — the only path the worker_crash fault can reach.
            requests.append(
                {
                    "id": request_id,
                    "op": "generate",
                    "templates": [TEMPLATE, TEMPLATE_2, TEMPLATE_3],
                    "jobs": 2,
                }
            )
        elif n % 5 == 2:
            requests.append(
                {"id": request_id, "op": "analyze", "sources": ANALYZE_SOURCES}
            )
        else:
            requests.append(
                {"id": request_id, "op": "generate", "template": TEMPLATE}
            )
    return requests


@pytest.mark.slow
def test_chaos_storm_zero_failures_and_healthy_finish(tmp_path, monkeypatch):
    monkeypatch.setenv(faults.FAULTS_ENV, CHAOS_SPEC)
    faults.reset()  # re-arm the lazy environment load in this process
    engine = CryptoGenEngine(cache_dir=tmp_path / "cache")
    server, path, thread = _start_socket_server(tmp_path, engine)

    failures: list[str] = []
    responses_per_client: dict[int, int] = {}

    def client(tag: int) -> None:
        responses = _roundtrip(path, _chaos_requests(tag))
        responses_per_client[tag] = len(responses)
        for response in responses:
            if not isinstance(response, dict) or "ok" not in response:
                failures.append(f"non-structured response: {response!r}")
            elif not response["ok"]:
                failures.append(str(response)[:200])
            elif response.get("batch") is not None and response["failed"]:
                failures.append(f"batch item failed: {response!r}"[:200])

    threads = [
        threading.Thread(target=client, args=(tag,))
        for tag in range(CHAOS_CLIENTS)
    ]
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join(timeout=600)
        assert not worker.is_alive(), "chaos client hung"

    assert not failures, failures[:5]
    assert responses_per_client == {
        tag: CHAOS_PER_CLIENT for tag in range(CHAOS_CLIENTS)
    }

    [stats] = _roundtrip(path, [{"id": "stats", "op": "stats"}])
    [health] = _roundtrip(path, [{"id": "health", "op": "health"}])
    _roundtrip(path, [{"id": "bye", "op": "shutdown"}])
    thread.join(30.0)

    # The storm actually stormed: the supervisor restarted the pool at
    # least once (worker_crash p=0.2 over 24+ pool tasks), and the serve
    # loop still answered everything.
    assert stats["supervisor"] is not None
    assert stats["supervisor"]["restarts"] > 0
    assert stats["server"]["completed"] >= CHAOS_CLIENTS * CHAOS_PER_CLIENT
    # The final health check comes back healthy (probing recovers a
    # degraded pool if one batch exhausted its restart budget).
    assert health["ok"] and health["state"] == "healthy"
    assert health["degraded"] is False
