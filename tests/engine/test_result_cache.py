"""The bounded LRU result cache (:mod:`repro.engine.result_cache`)."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.crysl import RuleSet
from repro.engine import CryptoGenEngine, GenerateRequest, ResultCache
from repro.usecases import use_case

TEMPLATE = str(use_case(1).template_path())


class TestResultCacheUnit:
    def test_hit_miss_counters(self):
        cache: ResultCache[str] = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", "A")
        assert cache.get("a") == "A"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache: ResultCache[int] = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a' to most-recent
        cache.put("c", 3)  # overflows: 'b' is now the LRU victim
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_existing_key_updates_in_place(self):
        cache: ResultCache[int] = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2
        assert cache.evictions == 0

    def test_zero_capacity_disables(self):
        cache: ResultCache[int] = ResultCache(capacity=0)
        assert not cache.enabled
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_clear(self):
        cache: ResultCache[int] = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_to_dict_shape(self):
        cache: ResultCache[int] = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        snapshot = cache.to_dict()
        assert snapshot["size"] == 1 and snapshot["capacity"] == 4
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1
        assert snapshot["hit_rate"] == 0.5


class TestEngineIntegration:
    def test_repeat_generate_is_a_hit_with_zero_builds(self):
        engine = CryptoGenEngine(ruleset=RuleSet.bundled())
        first = engine.generate(GenerateRequest(template=TEMPLATE))
        assert first.ok and not first.cached
        second = engine.generate(GenerateRequest(template=TEMPLATE))
        assert second.ok and second.cached
        assert second.dfa_builds == 0
        assert second.module is first.module
        assert engine.result_cache.hits == 1
        assert engine.diagnostics.counter("result_cache.hits") == 1
        # The hit's trace says where the answer came from.
        names = [s["name"] for s in second.trace.to_dict()["spans"]]
        assert "result-cache:hit" in names
        engine.close()

    def test_distinct_options_are_distinct_keys(self):
        engine = CryptoGenEngine(ruleset=RuleSet.bundled())
        engine.generate(GenerateRequest(template=TEMPLATE))
        verified = engine.generate(
            GenerateRequest(template=TEMPLATE, verify=True)
        )
        # Same template, different effective options: not a hit.
        assert not verified.cached
        engine.close()

    def test_inline_source_keyed_by_content(self):
        engine = CryptoGenEngine(ruleset=RuleSet.bundled())
        source = Path(TEMPLATE).read_text(encoding="utf-8")
        first = engine.generate(GenerateRequest(source=source, name="t.py"))
        repeat = engine.generate(GenerateRequest(source=source, name="t.py"))
        edited = engine.generate(
            GenerateRequest(source=source + "\n# edited\n", name="t.py")
        )
        assert first.ok and not first.cached
        assert repeat.cached
        assert not edited.cached
        engine.close()

    def test_errors_are_never_cached(self):
        engine = CryptoGenEngine(ruleset=RuleSet.bundled())
        for _ in range(2):
            result = engine.generate(
                GenerateRequest(source="not a template", name="bad.py")
            )
            assert not result.ok
            assert not result.cached
        assert engine.result_cache.hits == 0
        engine.close()

    def test_refresh_rules_invalidates(self, tmp_path):
        rules = tmp_path / "rules"
        rules.mkdir()
        for path in sorted(Path("src/repro/rules").glob("*.crysl")):
            shutil.copy(path, rules / path.name)
        engine = CryptoGenEngine(rules_dir=rules)
        engine.generate(GenerateRequest(template=TEMPLATE))
        assert engine.generate(GenerateRequest(template=TEMPLATE)).cached

        target = rules / "SecureRandom.crysl"
        text = target.read_text(encoding="utf-8")
        target.write_text(
            text.replace("ENSURES", "ENSURES "), encoding="utf-8"
        )
        report = engine.refresh_rules()
        assert report.dirty
        assert len(engine.result_cache) == 0  # dropped on rebuild
        after = engine.generate(GenerateRequest(template=TEMPLATE))
        assert after.ok and not after.cached  # regenerated under new rules
        assert engine.generate(GenerateRequest(template=TEMPLATE)).cached
        engine.close()

    def test_capacity_zero_engine_never_caches(self):
        engine = CryptoGenEngine(
            ruleset=RuleSet.bundled(), result_cache_size=0
        )
        engine.generate(GenerateRequest(template=TEMPLATE))
        repeat = engine.generate(GenerateRequest(template=TEMPLATE))
        assert not repeat.cached
        assert engine.result_cache.hits == 0
        engine.close()
