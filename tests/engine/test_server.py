"""The NDJSON serve protocol (:class:`EngineServer`)."""

from __future__ import annotations

import io
import json
import shutil
from pathlib import Path

import pytest

from repro.engine import CryptoGenEngine, EngineServer, PROTOCOL_VERSION
from repro.usecases import use_case

TEMPLATE = str(use_case(1).template_path())


@pytest.fixture()
def server():
    srv = EngineServer(CryptoGenEngine())
    yield srv
    srv.engine.close()


def _run(server, requests: list) -> list[dict]:
    """Feed request lines through the real serve loop; parse responses."""
    lines = [
        r if isinstance(r, str) else json.dumps(r) for r in requests
    ]
    out = io.StringIO()
    server.serve_stream(iter(line + "\n" for line in lines), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestProtocol:
    def test_ping(self, server):
        [response] = _run(server, [{"id": 1, "op": "ping"}])
        assert response["ok"] and response["id"] == 1
        assert response["protocol"] == PROTOCOL_VERSION
        assert response["rules"] > 0

    def test_generate_then_warm_generate(self, server):
        responses = _run(
            server,
            [
                {"id": "a", "op": "generate", "template": TEMPLATE},
                {"id": "b", "op": "generate", "template": TEMPLATE},
            ],
        )
        first, second = responses
        assert first["ok"] and first["id"] == "a"
        assert "source" in first["result"]
        assert first["trace"]["spans"]
        assert "elapsed_ms" in first
        assert second["ok"] and second["warm"]
        assert second["dfa_builds"] == 0

    def test_generate_inline_source(self, server):
        source = Path(TEMPLATE).read_text(encoding="utf-8")
        [response] = _run(
            server,
            [{"id": 2, "op": "generate", "source": source, "name": "t.py"}],
        )
        assert response["ok"]

    def test_analyze(self, server):
        gen, ana = _run(
            server,
            [
                {"id": 1, "op": "generate", "template": TEMPLATE},
                {
                    "id": 2,
                    "op": "analyze",
                    "sources": {"m.py": "PLACEHOLDER"},
                },
            ],
        )
        assert gen["ok"]
        # Second pass with the real generated source.
        srv = EngineServer(CryptoGenEngine())
        [response] = _run(
            srv,
            [
                {
                    "id": 3,
                    "op": "analyze",
                    "sources": {"m.py": gen["result"]["source"]},
                }
            ],
        )
        assert response["ok"]
        assert response["result"]["is_secure"]
        srv.engine.close()

    def test_stats(self, server):
        _, stats = _run(
            server,
            [
                {"id": 1, "op": "generate", "template": TEMPLATE},
                {"id": 2, "op": "stats"},
            ],
        )
        assert stats["ok"]
        assert stats["requests"] == 1
        assert "dfa_builds" in stats["compiled_rules"]
        assert "stages" in stats["diagnostics"]
        assert "hit_rate" in stats["summary_cache"]

    def test_repeat_analyze_reuses_resident_summaries(self, server):
        sources = {
            "helpers.py": "def make_iv():\n    return b'0' * 16\n",
            "app.py": (
                "from helpers import make_iv\n"
                "def run():\n"
                "    iv = make_iv()\n"
                "    return iv\n"
            ),
        }
        cold, warm, stats = _run(
            server,
            [
                {"id": 1, "op": "analyze", "sources": sources},
                {"id": 2, "op": "analyze", "sources": sources},
                {"id": 3, "op": "stats"},
            ],
        )
        assert cold["ok"] and warm["ok"]
        assert cold["reanalyzed_functions"] == cold["result"]["total_functions"]
        # the resident cache answers the entire second request
        assert warm["reanalyzed_functions"] == 0
        assert (
            warm["result"]["summary_cache_hits"]
            == warm["result"]["total_functions"]
        )
        assert warm["result"]["modules"] == cold["result"]["modules"]
        assert stats["summary_cache"]["hit_rate"] == 0.5

    def test_shutdown_stops_the_loop(self, server):
        responses = _run(
            server,
            [
                {"id": 1, "op": "shutdown"},
                {"id": 2, "op": "ping"},  # never reached
            ],
        )
        assert len(responses) == 1
        assert responses[0]["op"] == "shutdown" and responses[0]["ok"]


class TestMalformedInput:
    def test_bad_json_gets_structured_error_and_loop_survives(self, server):
        responses = _run(
            server,
            [
                "this is not json {",
                {"id": 9, "op": "ping"},
            ],
        )
        error, ping = responses
        assert error["ok"] is False
        assert error["id"] is None
        assert error["error"]["type"] == "JSONDecodeError"
        assert ping["ok"]  # the daemon survived

    def test_non_object_request(self, server):
        [response] = _run(server, ["[1, 2, 3]"])
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"

    def test_unknown_op(self, server):
        [response] = _run(server, [{"id": 5, "op": "transmogrify"}])
        assert response["ok"] is False
        assert response["id"] == 5
        assert "unknown op" in response["error"]["message"]

    def test_missing_op(self, server):
        [response] = _run(server, [{"id": 6}])
        assert response["ok"] is False
        assert "op" in response["error"]["message"]

    def test_generate_without_payload(self, server):
        [response] = _run(server, [{"id": 7, "op": "generate"}])
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"

    def test_blank_lines_are_skipped(self, server):
        responses = _run(server, ["", "   ", {"id": 1, "op": "ping"}])
        assert len(responses) == 1


class TestTimeout:
    def test_overdue_request_times_out_and_server_keeps_serving(
        self, monkeypatch
    ):
        # The regression this pins down: a timeout used to flip the
        # drain flag and kill the whole server. Now only the offending
        # request pays — a slow request followed by a fast one on the
        # same connection yields a structured TimeoutError and then a
        # normal answer, in request order.
        import time

        server = EngineServer(CryptoGenEngine(), timeout=0.05, workers=2)
        real_generate = server.engine.generate

        def slow_generate(request):
            # Deterministically overdue: sleep releases the GIL, so the
            # writer's deadline always fires (a plain warm generate
            # can hold the GIL to completion and beat a tiny timeout).
            time.sleep(0.5)
            return real_generate(request)

        monkeypatch.setattr(server.engine, "generate", slow_generate)
        responses = _run(
            server,
            [
                {"id": 1, "op": "generate", "template": TEMPLATE},
                {"id": 2, "op": "ping"},  # answered after the timeout
            ],
        )
        assert len(responses) == 2
        timed_out, ping = responses
        assert timed_out["ok"] is False
        assert timed_out["id"] == 1
        assert timed_out["error"]["type"] == "TimeoutError"
        assert ping["ok"] and ping["id"] == 2 and ping["op"] == "ping"
        # Responses come back in request order (per-connection seqs).
        assert [r["seq"] for r in responses] == [1, 2]
        assert server.metrics.to_dict()["timeouts"] == 1

    def test_fast_requests_beat_the_deadline(self, monkeypatch):
        server = EngineServer(CryptoGenEngine(), timeout=30.0, workers=2)
        responses = _run(
            server,
            [{"id": 1, "op": "ping"}, {"id": 2, "op": "ping"}],
        )
        assert [r["ok"] for r in responses] == [True, True]
        assert server.metrics.to_dict()["timeouts"] == 0


class TestRefreshRules:
    def test_refresh_over_the_protocol(self, tmp_path):
        rules = tmp_path / "rules"
        rules.mkdir()
        for path in sorted(Path("src/repro/rules").glob("*.crysl")):
            shutil.copy(path, rules / path.name)
        server = EngineServer(CryptoGenEngine(rules_dir=rules))

        [clean] = _run(server, [{"id": 1, "op": "refresh-rules"}])
        assert clean["ok"] and clean["report"]["dirty"] is False

        target = rules / "SecureRandom.crysl"
        text = target.read_text(encoding="utf-8")
        target.write_text(text.replace("ENSURES", "ENSURES "), encoding="utf-8")
        [dirty] = _run(server, [{"id": 2, "op": "refresh-rules"}])
        assert dirty["report"]["changed"] == ["repro.jca.SecureRandom"]
        server.engine.close()

    def test_refresh_without_repository_is_protocol_error(self, server):
        [response] = _run(server, [{"id": 1, "op": "refresh-rules"}])
        assert response["ok"] is False
        assert "--rules" in response["error"]["message"]


class TestServeStage:
    def test_serve_stage_recorded(self, server):
        _run(server, [{"id": 1, "op": "ping"}])
        assert "serve" in server.engine.diagnostics.stages


class TestShutdownUnderLoad:
    def test_sigterm_drains_with_ordered_responses_and_exit_0(self, tmp_path):
        """SIGTERM with a loaded queue and crashing workers exits 0.

        A real server subprocess gets a pipelined burst (every dispatch
        slowed by fault injection, plus one pool batch with worker
        crashes enabled), then SIGTERM mid-flight. The accepted
        requests must all flush — in per-connection ``seq`` order, no
        gaps — and the process must exit 0.
        """
        import os
        import signal
        import socket as socketlib
        import subprocess
        import sys
        import time

        import repro

        sock_path = tmp_path / "drain.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        env["REPRO_FAULTS"] = "slow_task:1.0,worker_crash:0.5,seed=7"
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                "serve",
                "--socket",
                str(sock_path),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not sock_path.exists():
                assert process.poll() is None, "server died during startup"
                assert time.monotonic() < deadline, "socket never appeared"
                time.sleep(0.05)

            client = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            client.connect(str(sock_path))
            requests = [{"id": n, "op": "ping"} for n in range(1, 11)]
            # One supervised-pool batch: worker_crash p=0.5 guarantees
            # the drain overlaps pool restarts, not just queued pings.
            requests.insert(
                5,
                {
                    "id": "batch",
                    "op": "generate",
                    "templates": [TEMPLATE, TEMPLATE],
                    "jobs": 2,
                },
            )
            payload = "".join(json.dumps(r) + "\n" for r in requests)
            client.sendall(payload.encode())
            time.sleep(0.3)  # let the reader ingest the burst
            process.send_signal(signal.SIGTERM)

            reader = client.makefile("r", encoding="utf-8")
            responses = [json.loads(line) for line in reader]
            client.close()
            assert process.wait(timeout=60) == 0

            # Every accepted request answered, in order, no gaps.
            assert responses, "drain flushed nothing"
            assert [r["seq"] for r in responses] == list(
                range(1, len(responses) + 1)
            )
            for response in responses:
                assert response["ok"], response
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestAcceptLoopResilience:
    def test_fd_exhaustion_on_accept_backs_off_and_keeps_serving(
        self, tmp_path, monkeypatch
    ):
        import errno
        import socket as socketlib
        import threading
        import time

        real_accept = socketlib.socket.accept
        state = {"failed": False}

        def flaky_accept(self):
            if not state["failed"]:
                state["failed"] = True
                raise OSError(errno.EMFILE, "Too many open files")
            return real_accept(self)

        monkeypatch.setattr(socketlib.socket, "accept", flaky_accept)
        path = tmp_path / "emfile.sock"
        server = EngineServer(CryptoGenEngine())
        thread = threading.Thread(
            target=server.serve_socket, args=(path,), daemon=True
        )
        thread.start()
        deadline = time.monotonic() + 10.0
        while not path.exists():
            assert time.monotonic() < deadline
            time.sleep(0.01)

        # The first accept attempt hits EMFILE; the loop backs off and
        # accepts this same connection on the next readiness pass.
        client = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        client.connect(str(path))
        client.sendall(b'{"id": 1, "op": "ping"}\n{"id": 2, "op": "shutdown"}\n')
        reader = client.makefile("r", encoding="utf-8")
        ping = json.loads(reader.readline())
        client.close()
        thread.join(10.0)

        assert ping["ok"] and ping["op"] == "ping"
        assert server.metrics.to_dict()["accept_errors"] == 1


class TestSocketTransport:
    def test_unix_socket_round_trip(self, tmp_path):
        import socket as socketlib
        import threading

        path = tmp_path / "engine.sock"
        server = EngineServer(CryptoGenEngine())
        thread = threading.Thread(
            target=server.serve_socket, args=(path,), daemon=True
        )
        thread.start()
        for _ in range(100):
            if path.exists():
                break
            thread.join(0.05)

        client = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        client.connect(str(path))
        client.sendall(b'{"id": 1, "op": "ping"}\n{"id": 2, "op": "shutdown"}\n')
        reader = client.makefile("r", encoding="utf-8")
        ping = json.loads(reader.readline())
        shutdown = json.loads(reader.readline())
        client.close()
        thread.join(5.0)

        assert ping["ok"] and ping["op"] == "ping"
        assert shutdown["ok"] and shutdown["op"] == "shutdown"
        assert not thread.is_alive()
        assert not path.exists()  # socket file cleaned up
