"""The evaluation drivers: every table regenerates and its shape holds."""

from __future__ import annotations

import pytest

from repro.eval import (
    PAPER_TABLE2,
    count_loc,
    measure_use_case,
    render_rq5,
    render_table,
    render_table1,
    render_table2,
    run_rq5,
    run_table1,
    run_table2,
)
from repro.eval.rq5 import shape_holds as rq5_shape
from repro.eval.table1 import shape_holds as table1_shape
from repro.eval.table2 import shape_holds as table2_shape
from repro.usecases import use_case


class TestRenderTable:
    def test_alignment(self):
        table = render_table(("A", "Long"), [(1, "x"), (22, "yy")], "T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_float_formatting(self):
        assert "1.50" in render_table(("v",), [(1.5,)])

    def test_bool_formatting(self):
        table = render_table(("v",), [(True,), (False,)])
        assert "yes" in table and "no" in table


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(runs=2)

    def test_all_eleven_measured(self, rows):
        assert [r.use_case.number for r in rows] == list(range(1, 12))

    def test_rq1_all_implemented(self, rows):
        assert all(r.compiles and r.sast_clean for r in rows)

    def test_rq2_under_budget(self, rows):
        assert all(r.runtime_seconds < 10.0 for r in rows)

    def test_rq3_memory_positive_and_modest(self, rows):
        assert all(0 < r.memory_mb < 100 for r in rows)

    def test_shape(self, rows):
        assert table1_shape(rows)

    def test_render_includes_paper_columns(self, rows):
        table = render_table1(rows)
        assert "Paper (s)" in table
        assert "8.10" in table  # use case 9's paper runtime

    def test_single_measure(self):
        row = measure_use_case(use_case(11), runs=1)
        assert row.implemented


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2()

    def test_eight_rows(self, rows):
        assert [r.use_case.number for r in rows] == [1, 2, 3, 5, 6, 7, 9, 10]

    def test_gen_templates_smaller(self, rows):
        for row in rows:
            assert row.template_loc < row.old_gen_total

    def test_shape_quarter_ish(self, rows):
        assert table2_shape(rows)

    def test_render(self, rows):
        table = render_table2(rows)
        assert "maintenance ratio" in table
        assert "paper XSL" in table

    def test_paper_reference_data_complete(self):
        assert set(PAPER_TABLE2) == {1, 2, 3, 5, 6, 7, 9, 10}

    def test_count_loc_ignores_blanks(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("a\n\n  \nb\n")
        assert count_loc(path) == 2


class TestRq5:
    @pytest.fixture(scope="class")
    def results(self):
        return run_rq5()

    def test_shape(self, results):
        assert rq5_shape(results)

    def test_render(self, results):
        table = render_rq5(results)
        assert "SUS gen" in table
        assert "76.3" in table  # the paper column
        assert "n.s." in table
