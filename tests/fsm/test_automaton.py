"""NFA/DFA machinery."""

from __future__ import annotations

from repro.fsm.automaton import NFA, DfaWalker, determinize


def _simple_nfa():
    """(a b) | c"""
    nfa = NFA()
    start = nfa.new_state()
    nfa.start = start
    mid = nfa.new_state()
    end = nfa.new_state()
    nfa.add_transition(start, "a", mid)
    nfa.add_transition(mid, "b", end)
    nfa.add_transition(start, "c", end)
    nfa.accepting = {end}
    return nfa


class TestNfa:
    def test_accepts(self):
        nfa = _simple_nfa()
        assert nfa.accepts(["a", "b"])
        assert nfa.accepts(["c"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["b"])
        assert not nfa.accepts([])

    def test_epsilon_closure(self):
        nfa = NFA()
        s0, s1, s2 = nfa.new_state(), nfa.new_state(), nfa.new_state()
        nfa.add_transition(s0, None, s1)
        nfa.add_transition(s1, None, s2)
        assert nfa.epsilon_closure({s0}) == {s0, s1, s2}

    def test_alphabet(self):
        assert _simple_nfa().alphabet == {"a", "b", "c"}


class TestDeterminize:
    def test_language_preserved(self):
        dfa = determinize(_simple_nfa())
        assert dfa.accepts(["a", "b"])
        assert dfa.accepts(["c"])
        assert not dfa.accepts(["a", "b", "c"])
        assert not dfa.accepts(["a", "c"])

    def test_dfa_is_deterministic(self):
        dfa = determinize(_simple_nfa())
        for moves in dfa.transitions:
            assert len(moves) == len(set(moves))  # dict keys unique

    def test_epsilon_heavy_nfa(self):
        nfa = NFA()
        s0 = nfa.new_state()
        nfa.start = s0
        s1 = nfa.new_state()
        s2 = nfa.new_state()
        nfa.add_transition(s0, None, s1)
        nfa.add_transition(s1, "x", s2)
        nfa.add_transition(s2, None, s1)  # loop x+
        nfa.accepting = {s2}
        dfa = determinize(nfa)
        assert dfa.accepts(["x"])
        assert dfa.accepts(["x", "x", "x"])
        assert not dfa.accepts([])


class TestDfaQueries:
    def test_prefix_viability(self):
        dfa = determinize(_simple_nfa())
        assert dfa.is_prefix_viable(["a"])
        assert dfa.is_prefix_viable([])
        assert not dfa.is_prefix_viable(["b"])

    def test_shortest_accepting_words(self):
        dfa = determinize(_simple_nfa())
        words = dfa.shortest_accepting_words()
        assert ("c",) in words
        assert ("a", "b") in words
        assert words.index(("c",)) < words.index(("a", "b"))  # BFS order


class TestWalker:
    def test_feed_sequence(self):
        walker = DfaWalker(determinize(_simple_nfa()))
        assert walker.feed("a")
        assert not walker.in_accepting_state
        assert walker.can_still_accept
        assert walker.feed("b")
        assert walker.in_accepting_state

    def test_violation_enters_dead_state(self):
        walker = DfaWalker(determinize(_simple_nfa()))
        assert not walker.feed("b")
        assert walker.in_dead_state
        assert not walker.can_still_accept
        assert walker.expected_symbols() == frozenset()

    def test_expected_symbols(self):
        walker = DfaWalker(determinize(_simple_nfa()))
        assert walker.expected_symbols() == {"a", "c"}

    def test_history(self):
        walker = DfaWalker(determinize(_simple_nfa()))
        walker.feed("a")
        walker.feed("b")
        assert walker.history == ["a", "b"]
