"""NFA/DFA machinery."""

from __future__ import annotations

from repro.fsm.automaton import NFA, DfaWalker, determinize


def _simple_nfa():
    """(a b) | c"""
    nfa = NFA()
    start = nfa.new_state()
    nfa.start = start
    mid = nfa.new_state()
    end = nfa.new_state()
    nfa.add_transition(start, "a", mid)
    nfa.add_transition(mid, "b", end)
    nfa.add_transition(start, "c", end)
    nfa.accepting = {end}
    return nfa


class TestNfa:
    def test_accepts(self):
        nfa = _simple_nfa()
        assert nfa.accepts(["a", "b"])
        assert nfa.accepts(["c"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["b"])
        assert not nfa.accepts([])

    def test_epsilon_closure(self):
        nfa = NFA()
        s0, s1, s2 = nfa.new_state(), nfa.new_state(), nfa.new_state()
        nfa.add_transition(s0, None, s1)
        nfa.add_transition(s1, None, s2)
        assert nfa.epsilon_closure({s0}) == {s0, s1, s2}

    def test_alphabet(self):
        assert _simple_nfa().alphabet == {"a", "b", "c"}


class TestDeterminize:
    def test_language_preserved(self):
        dfa = determinize(_simple_nfa())
        assert dfa.accepts(["a", "b"])
        assert dfa.accepts(["c"])
        assert not dfa.accepts(["a", "b", "c"])
        assert not dfa.accepts(["a", "c"])

    def test_dfa_is_deterministic(self):
        dfa = determinize(_simple_nfa())
        for moves in dfa.transitions:
            assert len(moves) == len(set(moves))  # dict keys unique

    def test_epsilon_heavy_nfa(self):
        nfa = NFA()
        s0 = nfa.new_state()
        nfa.start = s0
        s1 = nfa.new_state()
        s2 = nfa.new_state()
        nfa.add_transition(s0, None, s1)
        nfa.add_transition(s1, "x", s2)
        nfa.add_transition(s2, None, s1)  # loop x+
        nfa.accepting = {s2}
        dfa = determinize(nfa)
        assert dfa.accepts(["x"])
        assert dfa.accepts(["x", "x", "x"])
        assert not dfa.accepts([])


class TestDfaQueries:
    def test_prefix_viability(self):
        dfa = determinize(_simple_nfa())
        assert dfa.is_prefix_viable(["a"])
        assert dfa.is_prefix_viable([])
        assert not dfa.is_prefix_viable(["b"])

    def test_shortest_accepting_words(self):
        dfa = determinize(_simple_nfa())
        words = dfa.shortest_accepting_words()
        assert ("c",) in words
        assert ("a", "b") in words
        assert words.index(("c",)) < words.index(("a", "b"))  # BFS order


class TestWalker:
    def test_feed_sequence(self):
        walker = DfaWalker(determinize(_simple_nfa()))
        assert walker.feed("a")
        assert not walker.in_accepting_state
        assert walker.can_still_accept
        assert walker.feed("b")
        assert walker.in_accepting_state

    def test_violation_enters_dead_state(self):
        walker = DfaWalker(determinize(_simple_nfa()))
        assert not walker.feed("b")
        assert walker.in_dead_state
        assert not walker.can_still_accept
        assert walker.expected_symbols() == frozenset()

    def test_expected_symbols(self):
        walker = DfaWalker(determinize(_simple_nfa()))
        assert walker.expected_symbols() == {"a", "c"}

    def test_history(self):
        walker = DfaWalker(determinize(_simple_nfa()))
        walker.feed("a")
        walker.feed("b")
        assert walker.history == ["a", "b"]


class TestAlphabetCaching:
    def test_nfa_alphabet_memo_invalidated_by_mutation(self):
        nfa = _simple_nfa()
        first = nfa.alphabet
        assert nfa.alphabet is first  # memoised, no rescan
        extra = nfa.new_state()
        nfa.add_transition(nfa.start, "d", extra)
        assert nfa.alphabet == {"a", "b", "c", "d"}

    def test_nfa_epsilon_moves_stay_out_of_the_alphabet(self):
        nfa = _simple_nfa()
        nfa.add_transition(nfa.start, None, nfa.start)
        assert None not in nfa.alphabet

    def test_dfa_alphabet_memo(self):
        dfa = determinize(_simple_nfa())
        first = dfa.alphabet
        assert first == {"a", "b", "c"}
        assert dfa.alphabet is first  # frozen dataclass: memo never stales


class TestDeterminizeClosureMemo:
    def test_repeated_target_sets_compute_one_closure(self, monkeypatch):
        """Subset construction reaching the same target set from many
        states must run the closure DFS once per distinct set."""
        # b-transitions from two different states into one epsilon-heavy
        # tail: both subset states move on "b" to the same target set.
        nfa = NFA()
        s0 = nfa.new_state()
        nfa.start = s0
        left, right, tail, end = (nfa.new_state() for _ in range(4))
        nfa.add_transition(s0, "a", left)
        nfa.add_transition(s0, "c", right)
        nfa.add_transition(left, "b", tail)
        nfa.add_transition(right, "b", tail)
        nfa.add_transition(tail, None, end)
        nfa.accepting = {end}

        seen: list[frozenset[int]] = []
        original = NFA.epsilon_closure

        def spy(self, states):
            key = frozenset(states)
            if key == frozenset({tail}):
                seen.append(key)
            return original(self, states)

        monkeypatch.setattr(NFA, "epsilon_closure", spy)
        dfa = determinize(nfa)
        assert dfa.accepts(["a", "b"]) and dfa.accepts(["c", "b"])
        assert len(seen) == 1  # memo: one DFS for the shared target set


class TestShortestWordsBfs:
    def test_breadth_first_order_over_a_wide_automaton(self):
        """Short words always precede longer ones — the deque rewrite
        must keep strict BFS order."""
        nfa = NFA()
        s0 = nfa.new_state()
        nfa.start = s0
        one = nfa.new_state()
        two_a, two_b = nfa.new_state(), nfa.new_state()
        nfa.add_transition(s0, "x", one)
        nfa.add_transition(s0, "p", two_a)
        nfa.add_transition(two_a, "q", two_b)
        nfa.accepting = {one, two_b}
        dfa = determinize(nfa)
        words = dfa.shortest_accepting_words()
        assert words == [("x",), ("p", "q")]

    def test_limit_is_respected(self):
        dfa = determinize(_simple_nfa())
        assert len(dfa.shortest_accepting_words(limit=1)) == 1
