"""The compiled DFA kernel: table layout, bitmasks, walker semantics."""

from __future__ import annotations

import pickle

import pytest

from repro.fsm.automaton import DFA, NFA, determinize
from repro.fsm.kernel import DfaKernel, KernelWalker


def _simple_dfa() -> DFA:
    """(a b) | c"""
    nfa = NFA()
    start = nfa.new_state()
    nfa.start = start
    mid = nfa.new_state()
    end = nfa.new_state()
    nfa.add_transition(start, "a", mid)
    nfa.add_transition(mid, "b", end)
    nfa.add_transition(start, "c", end)
    nfa.accepting = {end}
    return determinize(nfa)


class TestCompilation:
    def test_symbols_are_interned_sorted(self):
        kernel = _simple_dfa().kernel
        assert kernel.symbols == ("a", "b", "c")
        assert kernel.symbol_ids == {"a": 0, "b": 1, "c": 2}

    def test_explicit_dead_state_is_appended(self):
        dfa = _simple_dfa()
        kernel = dfa.kernel
        assert kernel.n_states == dfa.state_count + 1
        assert kernel.dead == dfa.state_count
        # Every transition out of the dead state loops back to it.
        base = kernel.dead * kernel.n_symbols
        for offset in range(kernel.n_symbols):
            assert kernel.table[base + offset] == kernel.dead

    def test_table_matches_dict_transitions(self):
        dfa = _simple_dfa()
        kernel = dfa.kernel
        for state, moves in enumerate(dfa.transitions):
            for symbol in kernel.symbols:
                expected = moves.get(symbol, kernel.dead)
                assert kernel.step(state, symbol) == expected

    def test_unknown_symbol_steps_to_dead(self):
        kernel = _simple_dfa().kernel
        assert kernel.step(kernel.start, "nope") == kernel.dead

    def test_accepting_and_live_masks(self):
        dfa = _simple_dfa()
        kernel = dfa.kernel
        for state in range(dfa.state_count):
            assert kernel.is_accepting(state) == (state in dfa.accepting)
            assert kernel.is_live(state) == dfa._can_reach_accepting(state)
        assert not kernel.is_accepting(kernel.dead)
        assert not kernel.is_live(kernel.dead)

    def test_expected_symbols_per_state(self):
        dfa = _simple_dfa()
        kernel = dfa.kernel
        for state, moves in enumerate(dfa.transitions):
            assert kernel.expected_symbols(state) == frozenset(moves)
        assert kernel.expected_symbols(kernel.dead) == frozenset()

    def test_dfa_memoizes_its_kernel(self):
        dfa = _simple_dfa()
        assert dfa.kernel is dfa.kernel

    def test_empty_alphabet_kernel(self):
        # An ORDER matching only the empty word: one accepting state,
        # no transitions.
        dfa = DFA(0, frozenset({0}), ({},))
        kernel = dfa.kernel
        assert kernel.n_symbols == 0
        assert kernel.accepts([])
        assert not kernel.accepts(["x"])
        walker = kernel.walk()
        assert walker.in_accepting_state
        assert not walker.feed("x")
        assert walker.in_dead_state


class TestWholeWordQueries:
    def test_accepts_parity(self):
        dfa = _simple_dfa()
        kernel = dfa.kernel
        for word in ([], ["c"], ["a"], ["a", "b"], ["a", "b", "c"], ["b"]):
            assert kernel.accepts(word) == dfa.accepts(word)

    def test_prefix_viability_parity(self):
        dfa = _simple_dfa()
        kernel = dfa.kernel
        for word in ([], ["a"], ["b"], ["c"], ["a", "b"]):
            assert kernel.is_prefix_viable(word) == dfa.is_prefix_viable(word)


class TestKernelWalker:
    def test_feed_sequence(self):
        walker = KernelWalker(_simple_dfa().kernel)
        assert walker.feed("a")
        assert not walker.in_accepting_state
        assert walker.can_still_accept
        assert walker.feed("b")
        assert walker.in_accepting_state

    def test_violation_enters_dead_state(self):
        walker = KernelWalker(_simple_dfa().kernel)
        assert not walker.feed("b")
        assert walker.in_dead_state
        assert not walker.can_still_accept
        assert walker.expected_symbols() == frozenset()

    def test_reset_rewinds_in_place(self):
        kernel = _simple_dfa().kernel
        walker = KernelWalker(kernel)
        walker.feed("nope")
        assert walker.in_dead_state
        assert walker.reset() is walker
        assert walker.state == kernel.start
        assert walker.feed("a") and walker.feed("b")
        assert walker.in_accepting_state

    def test_walker_is_slotted(self):
        walker = KernelWalker(_simple_dfa().kernel)
        with pytest.raises(AttributeError):
            walker.surprise = 1

    def test_replay_reports_no_violation_and_advances(self):
        walker = KernelWalker(_simple_dfa().kernel)
        assert walker.replay(["a", "b"]) == -1
        assert walker.in_accepting_state

    def test_replay_pinpoints_first_violating_index(self):
        kernel = _simple_dfa().kernel
        assert KernelWalker(kernel).replay(["a", "c"]) == 1
        assert KernelWalker(kernel).replay(["b", "a"]) == 0
        # Unknown labels violate exactly like illegal known ones.
        assert KernelWalker(kernel).replay(["a", "nope", "b"]) == 1

    def test_replay_on_a_dead_walker_flags_the_first_label(self):
        walker = KernelWalker(_simple_dfa().kernel)
        walker.feed("nope")
        assert walker.replay(["a"]) == 0
        assert walker.replay([]) == -1  # nothing fed, nothing violated

    def test_replay_matches_stepwise_feed(self):
        kernel = _simple_dfa().kernel
        for word in (["a", "b"], ["c"], ["a", "c"], ["b"], [], ["a", "x"]):
            stepper = KernelWalker(kernel)
            expected = -1
            for index, label in enumerate(word):
                if not stepper.feed(label):
                    expected = index
                    break
            batch = KernelWalker(kernel)
            assert batch.replay(word) == expected, word
            # Both land in the same final state either way.
            full = KernelWalker(kernel)
            for label in word:
                full.feed(label)
            assert batch.state == full.state, word

    def test_liveness_is_o1_no_graph_traversal(self, monkeypatch):
        """``can_still_accept`` must never fall back to the reference
        DFS — the whole point of the precomputed live mask."""
        dfa = _simple_dfa()
        kernel = dfa.kernel  # built before the DFS is disarmed

        def boom(self, state):  # pragma: no cover - must not run
            raise AssertionError("kernel liveness ran a graph traversal")

        monkeypatch.setattr(DFA, "_can_reach_accepting", boom)
        walker = KernelWalker(kernel)
        assert walker.can_still_accept
        walker.feed("a")
        assert walker.can_still_accept
        walker.feed("nope")
        assert not walker.can_still_accept


class TestValueSemantics:
    def test_pickle_roundtrip_preserves_everything(self):
        kernel = _simple_dfa().kernel
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone == kernel
        assert clone.symbol_ids == kernel.symbol_ids
        assert clone.dead == kernel.dead
        assert list(clone.table) == list(kernel.table)
        walker = clone.walk()
        assert walker.feed("a") and walker.feed("b")
        assert walker.in_accepting_state

    def test_structural_equality(self):
        assert _simple_dfa().kernel == _simple_dfa().kernel
        assert _simple_dfa().kernel != DFA(0, frozenset({0}), ({},)).kernel

    def test_dfa_pickles_without_memos(self):
        """The kernel memo must not ride along inside DFA pickles — the
        disk cache persists the kernel as its own artefact."""
        dfa = _simple_dfa()
        dfa.kernel  # force the memo
        clone = pickle.loads(pickle.dumps(dfa))
        assert "_kernel" not in clone.__dict__
        assert clone.accepts(["a", "b"])
        assert clone.kernel == dfa.kernel  # rebuilt on demand, same value
