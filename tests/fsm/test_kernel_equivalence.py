"""Equivalence property suite: table kernel vs. the reference dict DFA.

For every bundled rule, the compiled :class:`~repro.fsm.kernel.DfaKernel`
and the dict-based :class:`~repro.fsm.automaton.DFA` must agree on
acceptance, prefix viability and expected symbols — over the rule's own
enumerated accepting paths, over seeded random event sequences (legal
symbols plus out-of-alphabet noise), through the dead state, and after
an in-place walker reset. The dict DFA is the reference implementation;
any divergence here is a kernel compilation bug.
"""

from __future__ import annotations

import random

import pytest

from repro.crysl import bundled_ruleset
from repro.fsm import DfaWalker, KernelWalker

#: Deterministic seeds — one fuzz campaign per rule per seed.
SEEDS = (0xC0DE, 2026)
#: Random sequences per (rule, seed).
SEQUENCES = 60
#: Maximum random sequence length.
MAX_LEN = 14


@pytest.fixture(scope="module")
def ruleset():
    return bundled_ruleset()


def _rules(ruleset):
    return [(rule, ruleset.compiled(rule)) for rule in ruleset]


def _assert_walkers_agree(reference: DfaWalker, kernel: KernelWalker, context):
    assert reference.in_dead_state == kernel.in_dead_state, context
    assert reference.in_accepting_state == kernel.in_accepting_state, context
    assert reference.can_still_accept == kernel.can_still_accept, context
    assert reference.expected_symbols() == kernel.expected_symbols(), context


def _random_sequence(rng: random.Random, symbols: list[str]) -> list[str]:
    # Legal symbols plus out-of-alphabet noise, so sequences regularly
    # wander into (and must stay in) the dead state.
    pool = symbols + ["__not_an_event__"]
    return [rng.choice(pool) for _ in range(rng.randint(0, MAX_LEN))]


def test_enumerated_paths_agree(ruleset):
    """Every enumerated accepting path is accepted by both machines,
    and every strict prefix of one is viable in both."""
    for rule, compiled in _rules(ruleset):
        dfa, kernel = compiled.dfa, compiled.kernel
        for path in compiled.paths:
            labels = tuple(event.label for event in path)
            assert dfa.accepts(labels) and kernel.accepts(labels), (
                rule.class_name,
                labels,
            )
            for cut in range(len(labels)):
                prefix = labels[:cut]
                assert dfa.is_prefix_viable(prefix) == kernel.is_prefix_viable(
                    prefix
                ) is True, (rule.class_name, prefix)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_sequences_agree(ruleset, seed):
    for rule, compiled in _rules(ruleset):
        dfa, kernel = compiled.dfa, compiled.kernel
        symbols = sorted(dfa.alphabet)
        rng = random.Random(seed ^ hash(rule.class_name) & 0xFFFFFFFF)
        for trial in range(SEQUENCES):
            word = _random_sequence(rng, symbols)
            context = (rule.class_name, seed, trial, word)
            assert dfa.accepts(word) == kernel.accepts(word), context
            assert dfa.is_prefix_viable(word) == kernel.is_prefix_viable(
                word
            ), context
            reference, walker = DfaWalker(dfa), KernelWalker(kernel)
            _assert_walkers_agree(reference, walker, context)
            for symbol in word:
                assert reference.feed(symbol) == walker.feed(symbol), context
                _assert_walkers_agree(reference, walker, context)
            # Batch replay of the same word lands in the same place and
            # pinpoints the same first violation the stepwise feed hit.
            batch = KernelWalker(kernel)
            first_violation = -1
            probe = DfaWalker(dfa)
            for index, symbol in enumerate(word):
                if not probe.feed(symbol):
                    first_violation = index
                    break
            assert batch.replay(word) == first_violation, context
            assert batch.state == walker.state, context


@pytest.mark.parametrize("seed", SEEDS)
def test_dead_state_is_absorbing_in_both(ruleset, seed):
    """Once dead, always dead — no event (legal or not) revives either
    machine, and both report empty expectations throughout."""
    for rule, compiled in _rules(ruleset):
        dfa, kernel = compiled.dfa, compiled.kernel
        symbols = sorted(dfa.alphabet)
        rng = random.Random(seed)
        reference, walker = DfaWalker(dfa), KernelWalker(kernel)
        reference.feed("__not_an_event__")
        walker.feed("__not_an_event__")
        for _ in range(20):
            symbol = rng.choice(symbols + ["__other_noise__"]) if symbols else "x"
            assert reference.feed(symbol) is False
            assert walker.feed(symbol) is False
            assert walker.in_dead_state and not walker.can_still_accept
            _assert_walkers_agree(reference, walker, (rule.class_name, symbol))


@pytest.mark.parametrize("seed", SEEDS)
def test_post_reset_matches_fresh_reference(ruleset, seed):
    """The analyzer restarts mid-protocol parameters by resetting the
    kernel walker in place; that must equal a brand-new reference
    walker, even from deep inside (or past the end of) a protocol."""
    for rule, compiled in _rules(ruleset):
        dfa, kernel = compiled.dfa, compiled.kernel
        symbols = sorted(dfa.alphabet)
        rng = random.Random(seed + 1)
        for trial in range(20):
            walker = KernelWalker(kernel)
            for symbol in _random_sequence(rng, symbols):
                walker.feed(symbol)
            walker.reset()
            reference = DfaWalker(dfa)  # fresh, as the old code allocated
            context = (rule.class_name, seed, trial)
            _assert_walkers_agree(reference, walker, context)
            for symbol in _random_sequence(rng, symbols):
                assert reference.feed(symbol) == walker.feed(symbol), context
                _assert_walkers_agree(reference, walker, context)


def test_compiled_rule_kernel_is_shared_and_persistent_form_agrees(ruleset):
    """One kernel instance per rule process-wide, and the persistable
    artefact form carries exactly that kernel."""
    for rule, compiled in _rules(ruleset):
        assert compiled.kernel is compiled.kernel
        assert compiled.kernel is compiled.dfa.kernel
        compiled.paths  # export refuses while the expensive slots are cold
        artefacts = compiled.export_artefacts()
        assert artefacts is not None
        assert artefacts.kernel is compiled.kernel
