"""Path enumeration: the paper's expansion policy, checked per construct
and as a property over random ORDER expressions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crysl import ast, parse_rule
from repro.fsm.build import rule_dfa
from repro.fsm.paths import (
    MAX_PATHS,
    PathExplosionError,
    enumerate_paths,
    path_parameter_count,
)


def _rule(order, events="a: m();\n b: n();\n c: o();"):
    return parse_rule(f"SPEC x.Y\nEVENTS\n {events}\nORDER\n {order}")


def labels(paths):
    return [tuple(e.label for e in p) for p in paths]


class TestExpansionPolicy:
    def test_sequence(self):
        assert labels(enumerate_paths(_rule("a, b"))) == [("a", "b")]

    def test_alternative(self):
        assert labels(enumerate_paths(_rule("a | b"))) == [("a",), ("b",)]

    def test_optional_two_variants(self):
        """x? -> one path without, one with (paper §3.3)."""
        assert labels(enumerate_paths(_rule("a, b?"))) == [("a",), ("a", "b")]

    def test_star_no_repetition(self):
        """x* expands like x? — repetition unsupported by design."""
        assert labels(enumerate_paths(_rule("a*"))) == [(), ("a",)]

    def test_plus_exactly_once(self):
        assert labels(enumerate_paths(_rule("a+"))) == [("a",)]

    def test_aggregate_expansion(self):
        rule = parse_rule(
            "SPEC x.Y\nEVENTS\n a: m();\n b: n();\n Both := a | b;\nORDER\n Both"
        )
        assert labels(enumerate_paths(rule)) == [("a",), ("b",)]

    def test_nested(self):
        paths = labels(enumerate_paths(_rule("a, (b | c)?")))
        assert paths == [("a",), ("a", "b"), ("a", "c")]

    def test_deduplication(self):
        paths = labels(enumerate_paths(_rule("(a | a), b")))
        assert paths == [("a", "b")]

    def test_missing_order_degenerates(self):
        rule = parse_rule("SPEC x.Y\nEVENTS\n a: m();\n b: n();")
        assert labels(enumerate_paths(rule)) == [("a",), ("b",)]


class TestConsistencyWithDfa:
    def test_all_enumerated_paths_accepted(self, ruleset):
        """Every enumerated path of every bundled rule is in the DFA's
        language — expansion and Thompson construction agree."""
        for rule in ruleset:
            dfa = rule_dfa(rule)
            for path in enumerate_paths(rule):
                assert dfa.accepts([e.label for e in path]), rule.class_name


# A recursive strategy over ORDER expressions with 3 event labels.
_orders = st.recursive(
    st.sampled_from(["a", "b", "c"]),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda t: f"({t[0]}, {t[1]})"),
        st.tuples(children, children).map(lambda t: f"({t[0]} | {t[1]})"),
        children.map(lambda inner: f"({inner})?"),
        children.map(lambda inner: f"({inner})*"),
        children.map(lambda inner: f"({inner})+"),
    ),
    max_leaves=6,
)


@settings(max_examples=60, deadline=None)
@given(order=_orders)
def test_random_orders_roundtrip_through_dfa(order):
    """Property: for arbitrary ORDER expressions, every enumerated path
    is accepted by the expression's own DFA."""
    rule = _rule(order)
    dfa = rule_dfa(rule)
    for path in enumerate_paths(rule):
        assert dfa.accepts([event.label for event in path])


def test_path_explosion_guard():
    # 13 alternations of 2 in sequence = 2^13 > MAX_PATHS.
    order = ", ".join(["(a | b)"] * 13)
    with pytest.raises(PathExplosionError):
        enumerate_paths(_rule(order))
    assert MAX_PATHS == 4096


def test_path_explosion_error_names_the_rule():
    order = ", ".join(["(a | b)"] * 13)
    with pytest.raises(PathExplosionError) as excinfo:
        enumerate_paths(_rule(order))
    assert "x.Y" in str(excinfo.value)
    assert str(MAX_PATHS) in str(excinfo.value)


def test_enumerate_paths_accepts_prebuilt_dfa():
    rule = _rule("a, (b | c)")
    dfa = rule_dfa(rule)
    assert labels(enumerate_paths(rule, dfa=dfa)) == labels(enumerate_paths(rule))


def test_max_paths_override_tightens_the_bound():
    """A per-call bound below the expansion count trips the guard even
    though the module default would allow it (GenerationContext threads
    this through CompiledRule)."""
    rule = _rule("(a | b), (a | c)")  # 4 paths
    assert len(enumerate_paths(rule)) == 4
    assert len(enumerate_paths(rule, max_paths=4)) == 4
    with pytest.raises(PathExplosionError) as excinfo:
        enumerate_paths(rule, max_paths=3)
    assert "3" in str(excinfo.value)


def test_validated_set_skips_revalidation_for_a_cached_dfa():
    """Paths recorded in ``validated`` bypass ``dfa.accepts`` entirely
    on later enumerations against the same DFA."""
    rule = _rule("a, (b | c)")
    real = rule_dfa(rule)
    calls = []

    class CountingDFA:
        def accepts(self, path):
            calls.append(tuple(path))
            return real.accepts(path)

    dfa = CountingDFA()
    validated: set[tuple[str, ...]] = set()
    first = enumerate_paths(rule, dfa=dfa, validated=validated)
    assert len(calls) == 2 and validated == {("a", "b"), ("a", "c")}
    second = enumerate_paths(rule, dfa=dfa, validated=validated)
    assert len(calls) == 2  # no further accepts() calls
    assert labels(first) == labels(second)


def test_fresh_dfa_ignores_a_stale_validated_set():
    """Without a caller-supplied DFA the memo must not apply: the set
    describes acceptance by *some other* automaton."""
    rule = _rule("a, b")
    poisoned = {("never", "checked")}
    assert labels(enumerate_paths(rule, validated=poisoned)) == [("a", "b")]
    # the stale memo is left untouched, not extended
    assert poisoned == {("never", "checked")}


def test_diagnostics_record_path_counts_under_the_cap():
    """Rules under MAX_PATHS have their enumerated path counts recorded
    in the run diagnostics (one entry per rule, last count wins)."""
    from repro.codegen import CrySLBasedCodeGenerator
    from repro.usecases import USE_CASES

    generator = CrySLBasedCodeGenerator()
    module = generator.generate_from_file(USE_CASES[0].template_path())
    counts = module.diagnostics.path_counts
    assert counts  # every considered rule appears
    for rule_name, count in counts.items():
        assert 1 <= count <= MAX_PATHS, rule_name


def test_parameter_count():
    rule = parse_rule(
        "SPEC x.Y\nOBJECTS\n int p;\n int q;\nEVENTS\n a: m(p, q);\n b: n(p);\n"
        "ORDER\n a, b"
    )
    (path,) = enumerate_paths(rule)
    assert path_parameter_count(path) == 3
