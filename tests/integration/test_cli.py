"""The cognicrypt-gen command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.usecases import use_case


@pytest.fixture(autouse=True)
def _hermetic_cache(tmp_path_factory, monkeypatch):
    """Keep the CLI's default persistent cache out of the real home."""
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("cli-cache"))
    )


def test_list_use_cases(capsys):
    assert main(["list-use-cases"]) == 0
    out = capsys.readouterr().out
    assert "PBE on Files" in out
    assert "Hashing of Strings" in out


def test_generate(tmp_path, capsys):
    template = use_case(11).template_path()
    assert main(["generate", str(template), "-o", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "generated" in out
    generated = tmp_path / "string_hashing_generated.py"
    assert generated.exists()
    assert "MessageDigest" in generated.read_text()


def test_generate_bad_template(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("class Empty:\n    pass\n")
    assert main(["generate", str(bad), "-o", str(tmp_path)]) == 1
    assert "error" in capsys.readouterr().err


def test_generate_with_stats(tmp_path, capsys):
    template = use_case(11).template_path()
    assert main(["generate", str(template), "-o", str(tmp_path), "--stats"]) == 0
    out = capsys.readouterr().out
    assert "pipeline stages:" in out
    assert "collect" in out and "resolve" in out and "emit" in out
    assert "parameter cascade" in out
    assert "compiled_rules" in out


def test_generate_multiple_templates_share_one_context(tmp_path, capsys):
    first = use_case(11).template_path()
    second = use_case(1).template_path()
    assert (
        main(
            [
                "generate", str(first), str(second),
                "-o", str(tmp_path), "--stats",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.count("generated ") == 2
    assert (tmp_path / "string_hashing_generated.py").exists()
    assert "cumulative over all templates:" in out


def test_generate_keeps_going_after_bad_template(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("class Empty:\n    pass\n")
    good = use_case(11).template_path()
    assert main(["generate", str(bad), str(good), "-o", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "error" in captured.err
    assert (tmp_path / "string_hashing_generated.py").exists()


def test_generate_no_cache(tmp_path, capsys):
    template = use_case(11).template_path()
    assert (
        main(["generate", str(template), "-o", str(tmp_path), "--no-cache"])
        == 0
    )
    assert (tmp_path / "string_hashing_generated.py").exists()


def test_generate_cache_dir_persists_artefacts(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    template = use_case(11).template_path()
    args = [
        "generate", str(template),
        "-o", str(tmp_path), "--cache-dir", str(cache_dir),
    ]
    assert main(args) == 0
    entries = list(cache_dir.glob("*.artefacts.pkl"))
    assert entries, "no artefacts were persisted"
    # Second (fresh-process equivalent) run: stats report disk hits and
    # zero DFA builds — everything loads from the store.
    assert main(args + ["--stats"]) == 0
    out = capsys.readouterr().out
    assert "disk_cache.hits" in out


def test_generate_unusable_cache_dir_is_a_clean_error(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    template = use_case(11).template_path()
    assert (
        main(
            [
                "generate", str(template),
                "-o", str(tmp_path), "--cache-dir", str(blocker / "cache"),
            ]
        )
        == 1
    )
    err = capsys.readouterr().err
    assert "error: --cache-dir" in err
    assert "Traceback" not in err


def test_generate_jobs_parallel(tmp_path, capsys):
    first = use_case(11).template_path()
    second = use_case(1).template_path()
    assert (
        main(
            [
                "generate", str(first), str(second),
                "-o", str(tmp_path), "--jobs", "2", "--no-cache",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.count("generated ") == 2
    assert (tmp_path / "string_hashing_generated.py").exists()


def test_generate_jobs_keeps_going_after_bad_template(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("class Empty:\n    pass\n")
    good = use_case(11).template_path()
    assert (
        main(
            [
                "generate", str(bad), str(good),
                "-o", str(tmp_path), "--jobs", "2", "--no-cache",
            ]
        )
        == 1
    )
    captured = capsys.readouterr()
    assert "error" in captured.err
    assert (tmp_path / "string_hashing_generated.py").exists()


def test_generate_bad_jobs_value(tmp_path, capsys):
    template = use_case(11).template_path()
    assert (
        main(["generate", str(template), "-o", str(tmp_path), "--jobs", "0"])
        == 1
    )
    assert "error" in capsys.readouterr().err


def test_use_case_command(tmp_path, capsys):
    assert main(["use-case", "11", "-o", str(tmp_path)]) == 0
    assert (tmp_path / "string_hashing.py").exists()


def test_analyze_clean(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text(
        "from repro.jca import MessageDigest\n"
        "def f():\n"
        "    md = MessageDigest.get_instance('SHA-256')\n"
        "    digest = md.digest(b'x')\n"
    )
    assert main(["analyze", str(clean)]) == 0
    assert "no misuses" in capsys.readouterr().out


def test_analyze_insecure(tmp_path, capsys):
    insecure = tmp_path / "bad.py"
    insecure.write_text(
        "from repro.jca import MessageDigest\n"
        "def f():\n"
        "    md = MessageDigest.get_instance('MD5')\n"
        "    digest = md.digest(b'x')\n"
    )
    assert main(["analyze", str(insecure)]) == 2
    assert "constraint" in capsys.readouterr().out


def test_check_rules_bundled(capsys):
    assert main(["check-rules"]) == 0
    out = capsys.readouterr().out
    assert "repro.jca.Cipher" in out
    assert "15 rules OK" in out


def test_check_rules_custom_directory(tmp_path, capsys):
    (tmp_path / "T.crysl").write_text("SPEC x.T\nEVENTS\n e: m();\nORDER\n e")
    assert main(["check-rules", str(tmp_path)]) == 0
    assert "1 rules OK" in capsys.readouterr().out


def test_check_rules_broken(tmp_path, capsys):
    (tmp_path / "T.crysl").write_text("NOT A RULE")
    assert main(["check-rules", str(tmp_path)]) == 1


def test_eval_rq5(capsys):
    assert main(["eval", "rq5"]) == 0
    assert "SUS gen" in capsys.readouterr().out


def test_eval_table2(capsys):
    assert main(["eval", "table2"]) == 0
    assert "maintenance ratio" in capsys.readouterr().out


def test_analyze_json_output(tmp_path, capsys):
    import json

    insecure = tmp_path / "bad.py"
    insecure.write_text(
        "from repro.jca import MessageDigest\n"
        "def f():\n"
        "    md = MessageDigest.get_instance('MD5')\n"
        "    digest = md.digest(b'x')\n"
    )
    assert main(["analyze", str(insecure), "--json"]) == 2
    report = json.loads(capsys.readouterr().out)
    (entry,) = report.values()
    assert entry["secure"] is False
    assert entry["findings"][0]["kind"] == "constraint-violation"
    assert entry["findings"][0]["rule"] == "repro.jca.MessageDigest"


def test_analyze_directory_recurses(tmp_path, capsys):
    package = tmp_path / "proj" / "inner"
    package.mkdir(parents=True)
    (tmp_path / "proj" / "clean.py").write_text(
        "from repro.jca import MessageDigest\n"
        "def f():\n"
        "    md = MessageDigest.get_instance('SHA-256')\n"
        "    digest = md.digest(b'x')\n"
    )
    (package / "bad.py").write_text(
        "from repro.jca import MessageDigest\n"
        "def g():\n"
        "    md = MessageDigest.get_instance('MD5')\n"
        "    digest = md.digest(b'x')\n"
    )
    assert main(["analyze", str(tmp_path / "proj")]) == 2
    out = capsys.readouterr().out
    assert "clean.py" in out
    assert "bad.py" in out


def test_analyze_cross_file_project(tmp_path, capsys):
    """Two modules, the misuse only visible interprocedurally."""
    (tmp_path / "wrapper.py").write_text(
        "from repro.jca import Cipher\n"
        "class Factory:\n"
        "    def make(self, key):\n"
        "        c = Cipher.get_instance('AES/GCM/NoPadding')\n"
        "        c.init(1, key)\n"
        "        return c\n"
    )
    (tmp_path / "usage.py").write_text(
        "from wrapper import Factory\n"
        "class App:\n"
        "    def template_usage(self, key):\n"
        "        cipher = Factory().make(key)\n"
    )
    assert main(["analyze", str(tmp_path)]) == 2
    out = capsys.readouterr().out
    assert "incomplete-operation" in out
    assert "make" in out


def test_analyze_sarif_output(tmp_path, capsys):
    import json

    insecure = tmp_path / "bad.py"
    insecure.write_text(
        "from repro.jca import MessageDigest\n"
        "def f():\n"
        "    md = MessageDigest.get_instance('MD5')\n"
        "    digest = md.digest(b'x')\n"
    )
    assert main(["analyze", str(insecure), "--sarif"]) == 2
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "cognicrypt-gen"
    (result,) = [
        r for r in run["results"] if r["ruleId"] == "constraint-violation"
    ]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1


def test_analyze_sarif_and_json_conflict(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("def f():\n    pass\n")
    assert main(["analyze", str(target), "--sarif", "--json"]) == 1
    assert "mutually exclusive" in capsys.readouterr().err


def test_analyze_empty_directory_is_an_error(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["analyze", str(empty)]) == 1
    assert "no Python files" in capsys.readouterr().err


def test_analyze_stats_on_stderr(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text(
        "from repro.jca import MessageDigest\n"
        "def f():\n"
        "    md = MessageDigest.get_instance('SHA-256')\n"
        "    digest = md.digest(b'x')\n"
    )
    assert main(["analyze", str(clean), "--stats", "--json"]) == 0
    captured = capsys.readouterr()
    import json

    json.loads(captured.out)  # stdout stays pure JSON
    assert "analysis.modules" in captured.err


INSECURE_MD5 = (
    "from repro.jca import MessageDigest\n"
    "def f():\n"
    "    md = MessageDigest.get_instance('MD5')\n"
    "    digest = md.digest(b'x')\n"
)


def test_analyze_update_baseline_then_gate(tmp_path, capsys):
    insecure = tmp_path / "bad.py"
    insecure.write_text(INSECURE_MD5)
    baseline = tmp_path / "baseline.json"

    # Recording the baseline succeeds even though findings exist.
    assert (
        main(
            [
                "analyze", str(insecure),
                "--baseline", str(baseline), "--update-baseline",
            ]
        )
        == 0
    )
    assert baseline.exists()
    assert "baseline" in capsys.readouterr().err

    # Same findings against the baseline: gate passes.
    assert main(["analyze", str(insecure), "--baseline", str(baseline)]) == 0
    assert "0 new" in capsys.readouterr().err


def test_analyze_baseline_fails_on_new_findings(tmp_path, capsys):
    insecure = tmp_path / "bad.py"
    insecure.write_text(INSECURE_MD5)
    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                "analyze", str(insecure),
                "--baseline", str(baseline), "--update-baseline",
            ]
        )
        == 0
    )
    capsys.readouterr()

    # A fresh misuse appears: only the new finding trips the gate.
    insecure.write_text(
        INSECURE_MD5
        + "def g():\n"
        "    md = MessageDigest.get_instance('SHA-1')\n"
        "    digest = md.digest(b'y')\n"
    )
    assert main(["analyze", str(insecure), "--baseline", str(baseline)]) == 2
    err = capsys.readouterr().err
    assert "1 new" in err and "1 baselined" in err


def test_analyze_baseline_rejects_garbage_file(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text(INSECURE_MD5)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("not json at all")
    assert main(["analyze", str(target), "--baseline", str(baseline)]) == 1
    assert "error" in capsys.readouterr().err


def test_analyze_update_baseline_requires_baseline_path(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("def f():\n    pass\n")
    assert main(["analyze", str(target), "--update-baseline"]) == 1
    assert "--baseline" in capsys.readouterr().err


def test_analyze_inline_suppressions_pass_the_gate(tmp_path, capsys):
    marked = tmp_path / "marked.py"
    marked.write_text(
        INSECURE_MD5.replace(
            "get_instance('MD5')",
            "get_instance('MD5')  # crysl: ignore",
        )
    )
    assert main(["analyze", str(marked)]) == 0
    assert "suppressed" in capsys.readouterr().out


def test_analyze_stats_report_reanalyzed_delta(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text(
        "from repro.jca import MessageDigest\n"
        "def f():\n"
        "    md = MessageDigest.get_instance('SHA-256')\n"
        "    digest = md.digest(b'x')\n"
    )
    cache = tmp_path / "cache"
    args = [
        "analyze", str(clean),
        "--cache-dir", str(cache), "--stats", "--json",
    ]
    assert main(args) == 0
    cold = capsys.readouterr().err
    assert "reanalyzed 1 of 1 function(s)" in cold

    # A second process over the same cache replays the stored summary.
    assert main(args) == 0
    warm = capsys.readouterr().err
    assert "reanalyzed 0 of 1 function(s)" in warm
    assert "1 from summary cache" in warm


def test_analyze_no_cache_disables_persistence(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f():\n    pass\n")
    assert main(["analyze", str(clean), "--no-cache"]) == 0


def test_generate_verify_gate_passes_for_use_case(tmp_path, capsys):
    template = use_case(11).template_path()
    assert (
        main(
            [
                "generate", str(template),
                "-o", str(tmp_path), "--verify", "--no-cache",
            ]
        )
        == 0
    )
    assert (tmp_path / "string_hashing_generated.py").exists()


def test_lint_rules_exit_codes(tmp_path, capsys):
    # The bundled set intentionally grants predicates nothing consumes
    # (external consumers), so warnings are present -> exit 3.
    assert main(["lint-rules"]) == 3
    assert "warning" in capsys.readouterr().out
    # A tiny self-consistent set is clean -> exit 0.
    (tmp_path / "T.crysl").write_text("SPEC x.T\nEVENTS\n e: m();\nORDER\n e")
    assert main(["lint-rules", str(tmp_path)]) == 0
    assert "consistent" in capsys.readouterr().out


def test_lint_rules_json(capsys):
    import json

    assert main(["lint-rules", "--json"]) == 3
    report = json.loads(capsys.readouterr().out)
    assert report["consistent"] is False
    assert report["warnings"]
    assert {"kind", "rule", "message"} <= set(report["warnings"][0])
