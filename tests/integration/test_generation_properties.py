"""Property tests over the whole generation pipeline.

For any well-formed template — arbitrary glue variable names, any of
the valid chain shapes — the generator must produce code that parses,
compiles, and passes the rule-driven analyzer. Randomised names probe
the emitter's collision handling (glue names shadowing instance
aliases, rule object names, or each other).
"""

from __future__ import annotations

import keyword

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import CrySLBasedCodeGenerator
from repro.crysl import bundled_ruleset
from repro.sast import CrySLAnalyzer

_GENERATOR = CrySLBasedCodeGenerator(bundled_ruleset())
_ANALYZER = CrySLAnalyzer(bundled_ruleset())

_names = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda name: not keyword.iskeyword(name) and name != "self"
)
_distinct_names = st.lists(_names, min_size=4, max_size=4, unique=True)


def _hash_template(names):
    data, digest, method, cls = names
    return f'''
from repro.codegen.fluent import CrySLCodeGenerator


class C_{cls}:
    def m_{method}(self, {data}: bytes):
        {digest} = None
        (CrySLCodeGenerator.get_instance()
            .consider_crysl_rule("repro.jca.MessageDigest")
            .add_parameter({data}, "input_data")
            .add_return_object({digest})
            .generate())
        return {digest}
'''


def _pbe_template(names):
    pwd, salt, key, method = names
    return f'''
from repro.codegen.fluent import CrySLCodeGenerator


class Derive:
    def m_{method}(self, {pwd}: bytearray):
        {salt} = bytearray(32)
        {key} = None
        (CrySLCodeGenerator.get_instance()
            .consider_crysl_rule("repro.jca.SecureRandom")
            .add_parameter({salt}, "out")
            .consider_crysl_rule("repro.jca.PBEKeySpec")
            .add_parameter({pwd}, "password")
            .consider_crysl_rule("repro.jca.SecretKeyFactory")
            .consider_crysl_rule("repro.jca.SecretKey")
            .consider_crysl_rule("repro.jca.SecretKeySpec")
            .add_return_object({key})
            .generate())
        return {key}
'''


def _encrypt_template(names):
    key, data, out, iv = names
    return f'''
from repro.codegen.fluent import CrySLCodeGenerator
from repro.jca import Cipher, SecretKey


class Enc:
    def run(self, {key}: SecretKey, {data}: bytes):
        {out} = None
        {iv} = None
        (CrySLCodeGenerator.get_instance()
            .consider_crysl_rule("repro.jca.Cipher")
            .add_parameter(Cipher.ENCRYPT_MODE, "op_mode")
            .add_parameter({key}, "key")
            .add_parameter({data}, "input_data")
            .add_return_object({iv}, "iv_out")
            .add_return_object({out})
            .generate())
        return {iv} + {out}
'''


@pytest.mark.parametrize(
    "builder", [_hash_template, _pbe_template, _encrypt_template]
)
@settings(max_examples=20, deadline=None)
@given(names=_distinct_names)
def test_arbitrary_glue_names_generate_clean_code(builder, names):
    template = builder(names)
    module = _GENERATOR.generate_from_source(template, "fuzz.py")
    module.compile_check()
    result = _ANALYZER.analyze_source(module.source, "fuzz.py")
    assert result.is_secure, result.render()


@settings(max_examples=10, deadline=None)
@given(names=_distinct_names)
def test_glue_names_shadowing_aliases(names):
    """Glue that already uses the generator's favourite names (aliases
    like `cipher`, results like `key_material`) must not collide."""
    _pwd, _salt, _key, method = names
    template = _pbe_template(
        ("secure_random", "pbe_key_spec", "key_material", method)
    )
    module = _GENERATOR.generate_from_source(template, "shadow.py")
    module.compile_check()
    assert _ANALYZER.analyze_source(module.source, "shadow.py").is_secure
