"""The paper's running example, end to end: Figure 4 template in,
Figure 5 code out, executed against the provider, re-checked by the
analyzer — the full Figure 6 workflow with observable artefacts at
every step."""

from __future__ import annotations

import pytest

from repro.codegen import parse_template_file
from repro.predicates import compute_links
from repro.usecases import use_case


@pytest.fixture(scope="module")
def pbe_module(generator):
    return generator.generate_from_file(use_case(3).template_path())


class TestFigure6Steps:
    """Each pipeline step leaves an inspectable artefact."""

    def test_step1_collect(self, ruleset):
        model = parse_template_file(use_case(3).template_path())
        chain = model.primary_class.methods[0].chain
        assert [c.rule_name.rsplit(".", 1)[-1] for c in chain.considered] == [
            "SecureRandom",
            "PBEKeySpec",
            "SecretKeyFactory",
            "SecretKey",
            "SecretKeySpec",
        ]
        instances = chain.to_instances(ruleset)
        assert instances[0].bindings["out"].expr == "salt"

    def test_step2_link(self, ruleset):
        model = parse_template_file(use_case(3).template_path())
        instances = model.primary_class.methods[0].chain.to_instances(ruleset)
        predicates = {link.predicate for link in compute_links(instances)}
        assert predicates == {
            "randomized",
            "specced_key",
            "generated_key",
            "key_material",
        }

    def test_steps3_4_select_and_resolve(self, pbe_module):
        report = pbe_module.reports[0]
        pbe_plan = report.plan.instances[1]
        assert pbe_plan.labels == ("c1", "cP")
        assert pbe_plan.env.value_of("iteration_count") == 10000

    def test_step5_assemble(self, pbe_module):
        assert "PBEKeySpec(pwd, salt, 10000, 128)" in pbe_module.source
        assert pbe_module.source.rstrip().count("class ") == 2


class TestExecution:
    def test_key_generation_wipes_password(self, pbe_module, project):
        loaded = project.write_and_load(pbe_module, "pbe")
        password = bytearray(b"a very secret password")
        key = loaded.SecureBytesEncryptor().generate_key(password)
        assert key.get_algorithm() == "AES"
        assert password == bytearray(len(b"a very secret password"))

    def test_encryption_roundtrip(self, pbe_module, project):
        loaded = project.write_and_load(pbe_module, "pbe")
        encryptor = loaded.SecureBytesEncryptor()
        key = encryptor.generate_key(bytearray(b"pw"))
        blob = encryptor.encrypt(key, b"binary \x00 payload")
        assert encryptor.decrypt(key, blob) == b"binary \x00 payload"

    def test_same_password_different_keys(self, pbe_module, project):
        """Fresh salts: two derivations of the same password differ."""
        loaded = project.write_and_load(pbe_module, "pbe")
        encryptor = loaded.SecureBytesEncryptor()
        key_a = encryptor.generate_key(bytearray(b"pw"))
        key_b = encryptor.generate_key(bytearray(b"pw"))
        assert key_a.get_encoded() != key_b.get_encoded()

    def test_ciphertexts_are_randomized(self, pbe_module, project):
        loaded = project.write_and_load(pbe_module, "pbe")
        encryptor = loaded.SecureBytesEncryptor()
        key = encryptor.generate_key(bytearray(b"pw"))
        assert encryptor.encrypt(key, b"same") != encryptor.encrypt(key, b"same")


class TestValidity:
    def test_compiler_and_analyzer_accept(self, pbe_module, analyzer):
        pbe_module.compile_check()
        result = analyzer.analyze_source(pbe_module.source, "pbe")
        assert result.is_secure, result.render()
