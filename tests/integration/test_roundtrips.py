"""Execute the generated code of the remaining use cases.

RSA-2048 key generation in pure Python takes seconds, so the
asymmetric/hybrid use cases share one generated key pair per module.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.usecases import generate_use_case


@pytest.fixture(scope="module")
def loaded(generator, tmp_path_factory):
    """Generate + import every use-case module once."""
    from repro.codegen import TargetProject

    project = TargetProject(tmp_path_factory.mktemp("generated"))
    modules = {}
    for number in (2, 4, 7, 9, 10, 11):
        modules[number] = project.write_and_load(
            generate_use_case(number, generator), f"uc{number}"
        )
    return modules


def test_pbe_strings(loaded):
    encryptor = loaded[2].SecureStringEncryptor()
    key = encryptor.generate_key(bytearray(b"pw"))
    message = encryptor.encrypt(key, "héllo wörld ✓")
    assert isinstance(message, str)
    assert encryptor.decrypt(key, message) == "héllo wörld ✓"


def test_symmetric_encryption(loaded):
    encryptor = loaded[4].SymmetricEncryptor()
    key = encryptor.generate_key()
    assert len(key.get_encoded()) == 16  # the rule's first key size
    blob = encryptor.encrypt(key, b"fresh-key data")
    assert encryptor.decrypt(key, blob) == b"fresh-key data"


def test_symmetric_wrong_key_fails(loaded):
    from repro.jca import BadPaddingError

    encryptor = loaded[4].SymmetricEncryptor()
    blob = encryptor.encrypt(encryptor.generate_key(), b"data")
    with pytest.raises(BadPaddingError):
        encryptor.decrypt(encryptor.generate_key(), blob)


@pytest.mark.slow
def test_hybrid_bytes_roundtrip(loaded):
    encryptor = loaded[7].HybridBytesEncryptor()
    key_pair = encryptor.generate_key_pair()
    payload = b"x" * 1000  # multiple GCM blocks
    assert encryptor.decrypt(key_pair, encryptor.encrypt(key_pair, payload)) == payload


def test_password_storage(loaded):
    vault = loaded[9].PasswordVault()
    stored = vault.hash_password(bytearray(b"hunter2"))
    assert len(stored) == 32 + 16  # salt + 128-bit hash
    assert vault.verify_password(bytearray(b"hunter2"), stored) is True
    assert vault.verify_password(bytearray(b"wrong"), stored) is False


def test_password_storage_unique_salts(loaded):
    vault = loaded[9].PasswordVault()
    assert vault.hash_password(bytearray(b"pw")) != vault.hash_password(
        bytearray(b"pw")
    )


@pytest.mark.slow
def test_digital_signing(loaded):
    signer = loaded[10].DocumentSigner()
    key_pair = signer.generate_key_pair()
    signature = signer.sign(key_pair, "the contract")
    assert signer.verify(key_pair, "the contract", signature) is True
    assert signer.verify(key_pair, "the c0ntract", signature) is False


def test_string_hashing(loaded):
    hasher = loaded[11].StringHasher()
    assert hasher.hash_string("abc") == hashlib.sha256(b"abc").hexdigest()


def test_template_usage_showcase_runs(loaded):
    """The generated Output class is runnable as-is (paper §5/A.6):
    supply a password for every pushed-up parameter."""
    import inspect

    output = loaded[9].OutputPasswordVault()
    parameters = [
        name
        for name in inspect.signature(output.template_usage).parameters
        if name != "self"
    ]
    arguments = [bytearray(b"pw") for _ in parameters]
    assert output.template_usage(*arguments) is not None


def test_message_authentication_extension(generator, tmp_path):
    """§7 extension use case 12 executes end to end."""
    from repro.codegen import TargetProject

    module = generate_use_case(12, generator)
    loaded = TargetProject(tmp_path).write_and_load(module, "uc12")
    authenticator = loaded.MessageAuthenticator()
    key = authenticator.generate_key()
    tag = authenticator.authenticate(key, b"payload")
    assert authenticator.verify(key, b"payload", tag) is True
    assert authenticator.verify(key, b"other", tag) is False


def test_key_storage_extension(generator, tmp_path):
    """§7 extension use case 13: sealed store survives a reopen and
    rejects wrong passwords."""
    from repro.codegen import TargetProject
    from repro.jca import BadPaddingError

    module = generate_use_case(13, generator)
    loaded = TargetProject(tmp_path / "gen").write_and_load(module, "uc13")
    vault = loaded.KeyVault()
    store_path = str(tmp_path / "keys.ccks")
    key = vault.create(bytearray(b"store pw"), store_path)
    assert vault.open(bytearray(b"store pw"), store_path).get_encoded() == key.get_encoded()
    with pytest.raises(BadPaddingError):
        vault.open(bytearray(b"wrong"), store_path)
