"""The Cipher service: modes, typestate, key typing, wrap/unwrap."""

from __future__ import annotations

import pytest

from repro.jca import (
    BadPaddingError,
    Cipher,
    GCMParameterSpec,
    IllegalStateError,
    InvalidAlgorithmParameterError,
    InvalidKeyError,
    IvParameterSpec,
    KeyGenerator,
    SecretKeySpec,
    SecureRandom,
)


@pytest.fixture()
def aes_key():
    generator = KeyGenerator.get_instance("AES")
    generator.init(128)
    return generator.generate_key()


class TestSymmetric:
    @pytest.mark.parametrize(
        "transformation",
        ["AES/GCM/NoPadding", "AES/CBC/PKCS5Padding", "AES/CTR/NoPadding"],
    )
    def test_roundtrip_all_modes(self, aes_key, transformation):
        encryptor = Cipher.get_instance(transformation)
        encryptor.init(Cipher.ENCRYPT_MODE, aes_key)
        iv = encryptor.get_iv()
        ciphertext = encryptor.do_final(b"mode roundtrip")

        decryptor = Cipher.get_instance(transformation)
        if "GCM" in transformation:
            params = GCMParameterSpec(128, iv)
        else:
            params = IvParameterSpec(iv)
        decryptor.init(Cipher.DECRYPT_MODE, aes_key, params)
        assert decryptor.do_final(ciphertext) == b"mode roundtrip"

    def test_fresh_iv_generated_per_init(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        first = cipher.get_iv()
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        assert cipher.get_iv() != first

    def test_update_then_do_final(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        cipher.update(b"part one ")
        cipher.update(b"part two")
        ciphertext = cipher.do_final()
        decryptor = Cipher.get_instance("AES/GCM/NoPadding")
        decryptor.init(
            Cipher.DECRYPT_MODE, aes_key, GCMParameterSpec(128, cipher.get_iv())
        )
        assert decryptor.do_final(ciphertext) == b"part one part two"

    def test_aad_is_authenticated(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        cipher.update_aad(b"header")
        ciphertext = cipher.do_final(b"payload")
        decryptor = Cipher.get_instance("AES/GCM/NoPadding")
        decryptor.init(
            Cipher.DECRYPT_MODE, aes_key, GCMParameterSpec(128, cipher.get_iv())
        )
        decryptor.update_aad(b"wrong header")
        with pytest.raises(BadPaddingError):
            decryptor.do_final(ciphertext)

    def test_explicit_random_source(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        cipher.init(
            Cipher.ENCRYPT_MODE, aes_key, SecureRandom.get_instance("HMACDRBG")
        )
        assert len(cipher.get_iv()) == 12

    def test_tampered_gcm_rejected(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        blob = bytearray(cipher.do_final(b"data"))
        blob[0] ^= 1
        decryptor = Cipher.get_instance("AES/GCM/NoPadding")
        decryptor.init(
            Cipher.DECRYPT_MODE, aes_key, GCMParameterSpec(128, cipher.get_iv())
        )
        with pytest.raises(BadPaddingError):
            decryptor.do_final(bytes(blob))


class TestTypestate:
    def test_do_final_before_init(self):
        with pytest.raises(IllegalStateError):
            Cipher.get_instance("AES/GCM/NoPadding").do_final(b"x")

    def test_update_before_init(self):
        with pytest.raises(IllegalStateError):
            Cipher.get_instance("AES/GCM/NoPadding").update(b"x")

    def test_reuse_after_final_requires_reinit(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        cipher.do_final(b"first")
        with pytest.raises(IllegalStateError):
            cipher.do_final(b"second")
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        cipher.do_final(b"second")  # re-init resets the state machine

    def test_get_iv_before_init(self):
        with pytest.raises(IllegalStateError):
            Cipher.get_instance("AES/GCM/NoPadding").get_iv()

    def test_aad_after_data_rejected(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        cipher.update(b"data first")
        with pytest.raises(IllegalStateError):
            cipher.update_aad(b"too late")

    def test_aad_on_unauthenticated_mode_rejected(self, aes_key):
        cipher = Cipher.get_instance("AES/CBC/PKCS5Padding")
        cipher.init(Cipher.ENCRYPT_MODE, aes_key)
        with pytest.raises(IllegalStateError):
            cipher.update_aad(b"aad")

    def test_unknown_op_mode(self, aes_key):
        with pytest.raises(InvalidAlgorithmParameterError):
            Cipher.get_instance("AES/GCM/NoPadding").init(9, aes_key)


class TestKeyTyping:
    def test_decrypt_without_iv_rejected(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        with pytest.raises(InvalidAlgorithmParameterError):
            cipher.init(Cipher.DECRYPT_MODE, aes_key)

    def test_wrong_spec_kind_rejected(self, aes_key):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        with pytest.raises(InvalidAlgorithmParameterError):
            cipher.init(Cipher.DECRYPT_MODE, aes_key, IvParameterSpec(b"\x00" * 12))

    def test_wrong_iv_length_for_cbc(self, aes_key):
        cipher = Cipher.get_instance("AES/CBC/PKCS5Padding")
        with pytest.raises(InvalidAlgorithmParameterError):
            cipher.init(Cipher.DECRYPT_MODE, aes_key, IvParameterSpec(b"\x00" * 8))

    def test_symmetric_rejects_public_key(self, jca_keypair_1024):
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        with pytest.raises(InvalidKeyError):
            cipher.init(Cipher.ENCRYPT_MODE, jca_keypair_1024.get_public())

    def test_asymmetric_encrypt_rejects_private_key(self, jca_keypair_1024):
        cipher = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        with pytest.raises(InvalidKeyError):
            cipher.init(Cipher.ENCRYPT_MODE, jca_keypair_1024.get_private())

    def test_asymmetric_decrypt_rejects_public_key(self, jca_keypair_1024):
        cipher = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        with pytest.raises(InvalidKeyError):
            cipher.init(Cipher.DECRYPT_MODE, jca_keypair_1024.get_public())

    def test_short_key_rejected(self):
        weak = SecretKeySpec(b"\x01" * 8, "AES")
        cipher = Cipher.get_instance("AES/GCM/NoPadding")
        with pytest.raises(InvalidKeyError):
            cipher.init(Cipher.ENCRYPT_MODE, weak)


class TestAsymmetric:
    def test_oaep_roundtrip(self, jca_keypair_1024):
        encryptor = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        encryptor.init(Cipher.ENCRYPT_MODE, jca_keypair_1024.get_public())
        ciphertext = encryptor.do_final(b"rsa payload")
        decryptor = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        decryptor.init(Cipher.DECRYPT_MODE, jca_keypair_1024.get_private())
        assert decryptor.do_final(ciphertext) == b"rsa payload"

    def test_iv_spec_rejected_for_rsa(self, jca_keypair_1024):
        cipher = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        with pytest.raises(InvalidAlgorithmParameterError):
            cipher.init(
                Cipher.ENCRYPT_MODE,
                jca_keypair_1024.get_public(),
                IvParameterSpec(b"\x00" * 16),
            )


class TestWrapping:
    def test_rsa_wrap_unwrap(self, jca_keypair_1024, aes_key):
        wrapper = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        wrapper.init(Cipher.WRAP_MODE, jca_keypair_1024.get_public())
        wrapped = wrapper.wrap(aes_key)

        unwrapper = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        unwrapper.init(Cipher.UNWRAP_MODE, jca_keypair_1024.get_private())
        recovered = unwrapper.unwrap(wrapped, "AES", Cipher.SECRET_KEY)
        assert recovered.get_encoded() == aes_key.get_encoded()
        assert recovered.get_algorithm() == "AES"

    def test_symmetric_wrap_unwrap(self, aes_key):
        generator = KeyGenerator.get_instance("AES")
        generator.init(256)
        kek = generator.generate_key()
        wrapper = Cipher.get_instance("AES/GCM/NoPadding")
        wrapper.init(Cipher.WRAP_MODE, kek)
        wrapped = wrapper.wrap(aes_key)
        unwrapper = Cipher.get_instance("AES/GCM/NoPadding")
        unwrapper.init(
            Cipher.UNWRAP_MODE, kek, GCMParameterSpec(128, wrapper.get_iv())
        )
        recovered = unwrapper.unwrap(wrapped, "AES", Cipher.SECRET_KEY)
        assert recovered.get_encoded() == aes_key.get_encoded()

    def test_wrap_requires_wrap_mode(self, jca_keypair_1024, aes_key):
        cipher = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        cipher.init(Cipher.ENCRYPT_MODE, jca_keypair_1024.get_public())
        with pytest.raises(IllegalStateError):
            cipher.wrap(aes_key)

    def test_unwrap_tampered_rejected(self, jca_keypair_1024, aes_key):
        wrapper = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        wrapper.init(Cipher.WRAP_MODE, jca_keypair_1024.get_public())
        wrapped = bytearray(wrapper.wrap(aes_key))
        wrapped[-1] ^= 1
        unwrapper = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        unwrapper.init(Cipher.UNWRAP_MODE, jca_keypair_1024.get_private())
        with pytest.raises(BadPaddingError):
            unwrapper.unwrap(bytes(wrapped), "AES", Cipher.SECRET_KEY)
