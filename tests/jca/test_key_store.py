"""The KeyStore service: lifecycle, sealing, wire format, tampering."""

from __future__ import annotations

import pytest

from repro.jca import (
    BadPaddingError,
    IllegalStateError,
    InvalidAlgorithmParameterError,
    InvalidKeyError,
    KeyStore,
    KeyStoreError,
    NoSuchAlgorithmError,
    SecretKey,
)


def _key(byte=1, size=16):
    return SecretKey(bytes([byte]) * size, "AES")


def _loaded_store():
    store = KeyStore.get_instance("CCKS")
    store.create(bytearray(b"store password"))
    return store


class TestLifecycle:
    def test_unknown_type(self):
        with pytest.raises(NoSuchAlgorithmError):
            KeyStore.get_instance("PKCS12")

    def test_use_before_load(self):
        store = KeyStore.get_instance("CCKS")
        with pytest.raises(IllegalStateError):
            store.get_key("x", bytearray(b"pw"))
        with pytest.raises(IllegalStateError):
            store.aliases()

    @pytest.mark.parametrize("bad", ["string", b"bytes", bytearray()])
    def test_bad_passwords(self, bad):
        store = KeyStore.get_instance("CCKS")
        with pytest.raises(InvalidAlgorithmParameterError):
            store.create(bad)


class TestEntries:
    def test_roundtrip(self):
        store = _loaded_store()
        store.set_key_entry("master", _key(7), bytearray(b"store password"))
        recovered = store.get_key("master", bytearray(b"store password"))
        assert recovered.get_encoded() == bytes([7]) * 16

    def test_wrong_password_rejected(self):
        store = _loaded_store()
        store.set_key_entry("master", _key(), bytearray(b"store password"))
        with pytest.raises(BadPaddingError):
            store.get_key("master", bytearray(b"wrong"))

    def test_missing_alias(self):
        store = _loaded_store()
        with pytest.raises(KeyStoreError):
            store.get_key("ghost", bytearray(b"store password"))

    def test_alias_management(self):
        store = _loaded_store()
        store.set_key_entry("a", _key(1), bytearray(b"store password"))
        store.set_key_entry("b", _key(2), bytearray(b"store password"))
        assert store.aliases() == ("a", "b")
        assert store.contains_alias("a")
        store.delete_entry("a")
        assert not store.contains_alias("a")
        assert store.size() == 1

    def test_empty_alias_rejected(self):
        store = _loaded_store()
        with pytest.raises(InvalidAlgorithmParameterError):
            store.set_key_entry("", _key(), bytearray(b"store password"))

    def test_only_secret_keys(self, jca_keypair_1024):
        store = _loaded_store()
        with pytest.raises(InvalidKeyError):
            store.set_key_entry(
                "pub", jca_keypair_1024.get_public(), bytearray(b"store password")
            )

    def test_fresh_salt_per_entry(self):
        """The same key under the same password seals differently."""
        store = _loaded_store()
        store.set_key_entry("a", _key(), bytearray(b"store password"))
        store.set_key_entry("b", _key(), bytearray(b"store password"))
        assert store._entries["a"] != store._entries["b"]


class TestPersistence:
    def test_store_and_load(self, tmp_path):
        path = str(tmp_path / "keys.ccks")
        store = _loaded_store()
        store.set_key_entry("master", _key(9), bytearray(b"store password"))
        store.store(path, bytearray(b"store password"))

        reopened = KeyStore.get_instance("CCKS")
        reopened.load(path, bytearray(b"store password"))
        assert reopened.get_key("master", bytearray(b"store password")).get_encoded() == bytes([9]) * 16

    def test_no_plaintext_key_material_on_disk(self, tmp_path):
        path = tmp_path / "keys.ccks"
        store = _loaded_store()
        store.set_key_entry("master", _key(0x5A, 32), bytearray(b"store password"))
        store.store(str(path), bytearray(b"store password"))
        assert bytes([0x5A]) * 32 not in path.read_bytes()

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.ccks"
        path.write_bytes(b"NOPE" + bytes(20))
        store = KeyStore.get_instance("CCKS")
        with pytest.raises(KeyStoreError):
            store.load(str(path), bytearray(b"pw"))

    def test_truncated_store(self, tmp_path):
        path = tmp_path / "keys.ccks"
        store = _loaded_store()
        store.set_key_entry("master", _key(), bytearray(b"store password"))
        store.store(str(path), bytearray(b"store password"))
        path.write_bytes(path.read_bytes()[:-5])
        fresh = KeyStore.get_instance("CCKS")
        with pytest.raises(KeyStoreError):
            fresh.load(str(path), bytearray(b"store password"))

    def test_alias_is_authenticated(self, tmp_path):
        """Renaming an entry on disk breaks its GCM tag (alias is AAD)."""
        path = tmp_path / "keys.ccks"
        store = _loaded_store()
        store.set_key_entry("aa", _key(), bytearray(b"store password"))
        store.store(str(path), bytearray(b"store password"))
        data = path.read_bytes().replace(b"aa", b"bb")
        path.write_bytes(data)
        fresh = KeyStore.get_instance("CCKS")
        fresh.load(str(path), bytearray(b"store password"))
        with pytest.raises(BadPaddingError):
            fresh.get_key("bb", bytearray(b"store password"))
