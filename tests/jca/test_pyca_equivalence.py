"""The pyca/`cryptography` mapping table is executable documentation:
for each documented correspondence, run both sides and compare.
"""

from __future__ import annotations

import os

import pytest

from repro.jca import (
    Cipher,
    GCMParameterSpec,
    Mac,
    MessageDigest,
    PBEKeySpec,
    SecretKeyFactory,
    SecretKeySpec,
)
from repro.jca.pyca_mapping import MAPPINGS, as_markdown_table, mapping_for

pyca = pytest.importorskip("cryptography")


def test_table_is_nonempty_and_unique():
    assert len(MAPPINGS) >= 10
    keys = [(m.jca_class, m.jca_operation) for m in MAPPINGS]
    assert len(keys) == len(set(keys))


def test_mapping_lookup():
    assert mapping_for("Cipher")
    assert not mapping_for("Nonexistent")


def test_markdown_rendering():
    table = as_markdown_table()
    assert table.count("\n") >= len(MAPPINGS)
    assert "SecretKeySpec" in table


def test_pbkdf2_equivalence():
    """PBEKeySpec+SecretKeyFactory == pyca's PBKDF2HMAC."""
    from cryptography.hazmat.primitives import hashes
    from cryptography.hazmat.primitives.kdf.pbkdf2 import PBKDF2HMAC

    salt = os.urandom(32)
    spec = PBEKeySpec(bytearray(b"password"), salt, 10000, 256)
    ours = SecretKeyFactory.get_instance("PBKDF2WithHmacSHA256").generate_secret(spec)
    theirs = PBKDF2HMAC(
        algorithm=hashes.SHA256(), length=32, salt=salt, iterations=10000
    ).derive(b"password")
    assert ours.get_encoded() == theirs


def test_gcm_equivalence():
    """Cipher(AES/GCM/NoPadding) == pyca's AESGCM."""
    from cryptography.hazmat.primitives.ciphers.aead import AESGCM

    key_bytes = os.urandom(16)
    key = SecretKeySpec(key_bytes, "AES")
    cipher = Cipher.get_instance("AES/GCM/NoPadding")
    cipher.init(Cipher.ENCRYPT_MODE, key)
    ciphertext = cipher.do_final(b"equivalence")
    recovered = AESGCM(key_bytes).decrypt(cipher.get_iv(), ciphertext, None)
    assert recovered == b"equivalence"


def test_cbc_equivalence():
    """Cipher(AES/CBC/PKCS5Padding) == pyca CBC + PKCS7."""
    from cryptography.hazmat.primitives import padding as pyca_padding
    from cryptography.hazmat.primitives.ciphers import (
        Cipher as PycaCipher,
        algorithms,
        modes,
    )

    key_bytes = os.urandom(16)
    key = SecretKeySpec(key_bytes, "AES")
    cipher = Cipher.get_instance("AES/CBC/PKCS5Padding")
    cipher.init(Cipher.ENCRYPT_MODE, key)
    ciphertext = cipher.do_final(b"cbc equivalence")
    decryptor = PycaCipher(
        algorithms.AES(key_bytes), modes.CBC(cipher.get_iv())
    ).decryptor()
    unpadder = pyca_padding.PKCS7(128).unpadder()
    padded = decryptor.update(ciphertext) + decryptor.finalize()
    assert unpadder.update(padded) + unpadder.finalize() == b"cbc equivalence"


def test_hmac_equivalence():
    from cryptography.hazmat.primitives import hashes, hmac

    key_bytes = os.urandom(32)
    ours = Mac.get_instance("HmacSHA256")
    ours.init(SecretKeySpec(key_bytes, "HmacSHA256"))
    theirs = hmac.HMAC(key_bytes, hashes.SHA256())
    theirs.update(b"message")
    assert ours.do_final(b"message") == theirs.finalize()


def test_digest_equivalence():
    from cryptography.hazmat.primitives import hashes

    digest = hashes.Hash(hashes.SHA256())
    digest.update(b"abc")
    assert MessageDigest.get_instance("SHA-256").digest(b"abc") == digest.finalize()


def test_rsa_oaep_equivalence(jca_keypair_1024):
    """pyca decrypts what our provider's Cipher encrypts."""
    from cryptography.hazmat.primitives import hashes
    from cryptography.hazmat.primitives.asymmetric import padding, rsa

    ours = jca_keypair_1024.get_private().rsa
    pyca_private = rsa.RSAPrivateNumbers(
        p=ours.p,
        q=ours.q,
        d=ours.d,
        dmp1=ours.d % (ours.p - 1),
        dmq1=ours.d % (ours.q - 1),
        iqmp=pow(ours.q, -1, ours.p),
        public_numbers=rsa.RSAPublicNumbers(e=ours.e, n=ours.n),
    ).private_key()
    cipher = Cipher.get_instance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
    cipher.init(Cipher.ENCRYPT_MODE, jca_keypair_1024.get_public())
    ciphertext = cipher.do_final(b"interop blob")
    plaintext = pyca_private.decrypt(
        ciphertext,
        padding.OAEP(
            mgf=padding.MGF1(hashes.SHA256()), algorithm=hashes.SHA256(), label=None
        ),
    )
    assert plaintext == b"interop blob"
