"""Transformation and algorithm-name parsing."""

from __future__ import annotations

import pytest

from repro.jca.exceptions import NoSuchAlgorithmError, NoSuchPaddingError
from repro.jca.registry import (
    SignatureScheme,
    parse_kdf,
    parse_mac,
    parse_signature,
    parse_transformation,
)


class TestTransformations:
    def test_gcm(self):
        t = parse_transformation("AES/GCM/NoPadding")
        assert t.algorithm == "AES"
        assert t.mode == "GCM"
        assert t.is_authenticated
        assert t.needs_iv
        assert not t.is_asymmetric

    def test_cbc(self):
        t = parse_transformation("AES/CBC/PKCS5Padding")
        assert not t.is_authenticated
        assert t.needs_iv

    def test_rsa_oaep(self):
        t = parse_transformation("RSA/ECB/OAEPWithSHA-256AndMGF1Padding")
        assert t.is_asymmetric
        assert not t.needs_iv

    def test_bare_algorithm_rejected(self):
        """'AES' alone would fall back to ECB in the JCA — refused here."""
        with pytest.raises(NoSuchAlgorithmError):
            parse_transformation("AES")

    def test_unknown_mode_rejected(self):
        with pytest.raises(NoSuchAlgorithmError):
            parse_transformation("AES/XTS/NoPadding")

    def test_unknown_padding_rejected(self):
        with pytest.raises(NoSuchPaddingError):
            parse_transformation("AES/CBC/ISO9797Padding")

    def test_unknown_combination_rejected(self):
        # Every part known, but the combination is not offered.
        with pytest.raises(NoSuchAlgorithmError):
            parse_transformation("AES/GCM/PKCS5Padding")

    def test_legacy_ecb_accepted_for_analysis_material(self):
        t = parse_transformation("AES/ECB/PKCS5Padding")
        assert t.mode == "ECB"

    def test_canonical_roundtrip(self):
        t = parse_transformation("AES/CTR/NoPadding")
        assert t.canonical == "AES/CTR/NoPadding"

    def test_error_carries_known_names(self):
        with pytest.raises(NoSuchAlgorithmError) as excinfo:
            parse_transformation("AES")
        assert "AES/GCM/NoPadding" in str(excinfo.value)


class TestKdfNames:
    @pytest.mark.parametrize(
        "name,digest",
        [
            ("PBKDF2WithHmacSHA256", "SHA-256"),
            ("PBKDF2WithHmacSHA384", "SHA-384"),
            ("PBKDF2WithHmacSHA512", "SHA-512"),
        ],
    )
    def test_parse(self, name, digest):
        assert parse_kdf(name) == digest

    def test_unknown_rejected(self):
        with pytest.raises(NoSuchAlgorithmError):
            parse_kdf("PBKDF2WithHmacMD5")


class TestMacNames:
    def test_parse(self):
        assert parse_mac("HmacSHA256") == "SHA-256"

    def test_unknown_rejected(self):
        with pytest.raises(NoSuchAlgorithmError):
            parse_mac("HmacMD5")


class TestSignatureNames:
    def test_pss(self):
        assert parse_signature("SHA256withRSA/PSS") == SignatureScheme(
            "SHA-256", "PSS"
        )

    def test_pkcs1(self):
        assert parse_signature("SHA512withRSA") == SignatureScheme(
            "SHA-512", "PKCS1v15"
        )

    def test_unknown_rejected(self):
        with pytest.raises(NoSuchAlgorithmError):
            parse_signature("MD5withRSA")
