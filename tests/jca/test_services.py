"""The remaining provider services: SecureRandom, digests, MACs, key
generators/factories, signatures, and key objects."""

from __future__ import annotations

import hashlib

import pytest

from repro.jca import (
    IllegalStateError,
    InvalidAlgorithmParameterError,
    InvalidKeyError,
    InvalidKeySpecError,
    KeyGenerator,
    KeyPairGenerator,
    Mac,
    MessageDigest,
    NoSuchAlgorithmError,
    PBEKeySpec,
    SecretKey,
    SecretKeyFactory,
    SecretKeySpec,
    SecureRandom,
    Signature,
)


class TestSecureRandom:
    def test_next_bytes_fills_in_place(self):
        buffer = bytearray(32)
        SecureRandom.get_instance("HMACDRBG").next_bytes(buffer)
        assert any(buffer)

    def test_next_bytes_requires_bytearray(self):
        with pytest.raises(IllegalStateError):
            SecureRandom.get_instance("NativePRNG").next_bytes(bytes(16))

    def test_generate_seed(self):
        assert len(SecureRandom.get_instance("NativePRNG").generate_seed(24)) == 24

    def test_set_seed_supplements(self):
        random = SecureRandom.get_instance("HMACDRBG")
        random.set_seed(b"extra entropy")
        assert len(random.random_bytes(16)) == 16

    def test_unknown_algorithm(self):
        with pytest.raises(NoSuchAlgorithmError):
            SecureRandom.get_instance("DUALECDRBG")


class TestMessageDigest:
    def test_matches_hashlib(self):
        md = MessageDigest.get_instance("SHA-256")
        md.update(b"abc")
        assert md.digest() == hashlib.sha256(b"abc").digest()

    def test_digest_resets(self):
        md = MessageDigest.get_instance("SHA-512")
        md.update(b"first")
        md.digest()
        assert md.digest(b"second") == hashlib.sha512(b"second").digest()

    def test_one_shot_digest(self):
        md = MessageDigest.get_instance("SHA-384")
        assert md.digest(b"x") == hashlib.sha384(b"x").digest()

    def test_is_equal(self):
        assert MessageDigest.is_equal(b"tag", b"tag")
        assert not MessageDigest.is_equal(b"tag", b"gat")

    def test_unknown_algorithm(self):
        with pytest.raises(NoSuchAlgorithmError):
            MessageDigest.get_instance("Whirlpool")


class TestMac:
    def test_roundtrip(self):
        key = SecretKeySpec(bytes(32), "HmacSHA256")
        mac = Mac.get_instance("HmacSHA256")
        mac.init(key)
        tag = mac.do_final(b"message")
        assert len(tag) == 32
        mac2 = Mac.get_instance("HmacSHA256")
        mac2.init(key)
        assert mac2.do_final(b"message") == tag

    def test_typestate(self):
        mac = Mac.get_instance("HmacSHA256")
        with pytest.raises(IllegalStateError):
            mac.do_final(b"message")
        with pytest.raises(IllegalStateError):
            mac.update(b"message")

    def test_requires_secret_key(self, jca_keypair_1024):
        mac = Mac.get_instance("HmacSHA256")
        with pytest.raises(InvalidKeyError):
            mac.init(jca_keypair_1024.get_public())

    def test_do_final_resets(self):
        key = SecretKeySpec(bytes(16), "HmacSHA256")
        mac = Mac.get_instance("HmacSHA512")
        mac.init(key)
        first = mac.do_final(b"a")
        assert mac.do_final(b"a") == first

    def test_mac_length(self):
        mac = Mac.get_instance("HmacSHA384")
        assert mac.get_mac_length() == 48


class TestSecretKeyFactory:
    def _spec(self):
        return PBEKeySpec(bytearray(b"pwd"), b"\x01" * 32, 10000, 256)

    def test_derivation_matches_pbkdf2(self):
        factory = SecretKeyFactory.get_instance("PBKDF2WithHmacSHA256")
        key = factory.generate_secret(self._spec())
        expected = hashlib.pbkdf2_hmac("sha256", b"pwd", b"\x01" * 32, 10000, 32)
        assert key.get_encoded() == expected

    def test_key_length_is_bits(self):
        factory = SecretKeyFactory.get_instance("PBKDF2WithHmacSHA512")
        key = factory.generate_secret(
            PBEKeySpec(bytearray(b"p"), b"\x02" * 16, 10000, 128)
        )
        assert len(key.get_encoded()) == 16

    def test_cleared_spec_rejected(self):
        spec = self._spec()
        spec.clear_password()
        factory = SecretKeyFactory.get_instance("PBKDF2WithHmacSHA256")
        with pytest.raises(InvalidKeySpecError):
            factory.generate_secret(spec)

    def test_wrong_spec_type_rejected(self):
        factory = SecretKeyFactory.get_instance("PBKDF2WithHmacSHA256")
        with pytest.raises(InvalidKeySpecError):
            factory.generate_secret(b"raw bytes")


class TestKeyGenerator:
    def test_generates_fresh_keys(self):
        generator = KeyGenerator.get_instance("AES")
        generator.init(128)
        assert generator.generate_key().get_encoded() != generator.generate_key().get_encoded()

    def test_key_size_honoured(self):
        generator = KeyGenerator.get_instance("AES")
        generator.init(256)
        assert len(generator.generate_key().get_encoded()) == 32

    def test_generate_before_init(self):
        with pytest.raises(IllegalStateError):
            KeyGenerator.get_instance("AES").generate_key()

    def test_unsupported_size(self):
        generator = KeyGenerator.get_instance("AES")
        with pytest.raises(InvalidAlgorithmParameterError):
            generator.init(100)


class TestKeyPairGenerator:
    def test_initialize_required(self):
        with pytest.raises(IllegalStateError):
            KeyPairGenerator.get_instance("RSA").generate_key_pair()

    def test_unsupported_size(self):
        generator = KeyPairGenerator.get_instance("RSA")
        with pytest.raises(InvalidAlgorithmParameterError):
            generator.initialize(512)

    def test_unknown_algorithm(self):
        with pytest.raises(NoSuchAlgorithmError):
            KeyPairGenerator.get_instance("DSA")


class TestSignature:
    def test_sign_verify(self, jca_keypair_1024):
        signer = Signature.get_instance("SHA256withRSA/PSS")
        signer.init_sign(jca_keypair_1024.get_private())
        signer.update(b"document")
        signature = signer.sign()
        verifier = Signature.get_instance("SHA256withRSA/PSS")
        verifier.init_verify(jca_keypair_1024.get_public())
        verifier.update(b"document")
        assert verifier.verify(signature)

    def test_pkcs1_variant(self, jca_keypair_1024):
        signer = Signature.get_instance("SHA256withRSA")
        signer.init_sign(jca_keypair_1024.get_private())
        signer.update(b"legacy")
        signature = signer.sign()
        verifier = Signature.get_instance("SHA256withRSA")
        verifier.init_verify(jca_keypair_1024.get_public())
        verifier.update(b"legacy")
        assert verifier.verify(signature)

    def test_typestate(self, jca_keypair_1024):
        sig = Signature.get_instance("SHA256withRSA/PSS")
        with pytest.raises(IllegalStateError):
            sig.update(b"x")
        sig.init_verify(jca_keypair_1024.get_public())
        with pytest.raises(IllegalStateError):
            sig.sign()
        sig.init_sign(jca_keypair_1024.get_private())
        with pytest.raises(IllegalStateError):
            sig.verify(b"x")

    def test_key_type_enforced(self, jca_keypair_1024):
        sig = Signature.get_instance("SHA256withRSA/PSS")
        with pytest.raises(InvalidKeyError):
            sig.init_sign(jca_keypair_1024.get_public())
        with pytest.raises(InvalidKeyError):
            sig.init_verify(jca_keypair_1024.get_private())

    def test_sign_resets_buffer(self, jca_keypair_1024):
        signer = Signature.get_instance("SHA256withRSA/PSS")
        signer.init_sign(jca_keypair_1024.get_private())
        signer.update(b"first")
        signer.sign()
        signer.update(b"second")
        signature = signer.sign()
        verifier = Signature.get_instance("SHA256withRSA/PSS")
        verifier.init_verify(jca_keypair_1024.get_public())
        verifier.update(b"second")
        assert verifier.verify(signature)


class TestKeyObjects:
    def test_destroy_wipes_material(self):
        key = SecretKey(b"\x01" * 16, "AES")
        key.destroy()
        assert key.is_destroyed()
        with pytest.raises(InvalidKeyError):
            key.get_encoded()

    def test_empty_secret_key_spec_rejected(self):
        with pytest.raises(InvalidKeyError):
            SecretKeySpec(b"", "AES")

    def test_key_pair_accessors(self, jca_keypair_1024):
        assert jca_keypair_1024.get_public() is jca_keypair_1024.public
        assert jca_keypair_1024.get_private() is jca_keypair_1024.private

    def test_public_key_encoding_roundtrip_fields(self, jca_keypair_1024):
        encoded = jca_keypair_1024.get_public().get_encoded()
        n_length = int.from_bytes(encoded[:4], "big")
        n = int.from_bytes(encoded[4 : 4 + n_length], "big")
        assert n == jca_keypair_1024.get_public().rsa.n
