"""Parameter specs, above all PBEKeySpec's clearing semantics."""

from __future__ import annotations

import pytest

from repro.jca.exceptions import IllegalStateError, InvalidAlgorithmParameterError
from repro.jca.spec import GCMParameterSpec, IvParameterSpec, PBEKeySpec


def _spec(password=b"hunter2", salt=b"\x01" * 32, iterations=10000, bits=128):
    return PBEKeySpec(bytearray(password), salt, iterations, bits)


class TestPBEKeySpec:
    def test_accessors(self):
        spec = _spec()
        assert spec.get_password() == b"hunter2"
        assert spec.get_salt() == b"\x01" * 32
        assert spec.get_iteration_count() == 10000
        assert spec.get_key_length() == 128

    def test_string_password_rejected(self):
        """The core of the paper's Figure 1 misuse: immutable passwords
        cannot be wiped."""
        with pytest.raises(InvalidAlgorithmParameterError):
            PBEKeySpec("a string", b"\x01" * 32, 10000, 128)

    def test_bytes_password_rejected(self):
        with pytest.raises(InvalidAlgorithmParameterError):
            PBEKeySpec(b"bytes too", b"\x01" * 32, 10000, 128)

    def test_clear_password_wipes_caller_buffer(self):
        password = bytearray(b"sensitive")
        spec = PBEKeySpec(password, b"\x01" * 32, 10000, 128)
        spec.clear_password()
        assert password == bytearray(len(b"sensitive"))

    def test_cleared_spec_refuses_password_access(self):
        spec = _spec()
        spec.clear_password()
        with pytest.raises(IllegalStateError):
            spec.get_password()

    def test_is_cleared_flag(self):
        spec = _spec()
        assert not spec.is_cleared
        spec.clear_password()
        assert spec.is_cleared

    def test_clearing_caller_buffer_does_not_corrupt_spec(self):
        """The spec snapshots the password: a caller wiping its own
        array early must not change what the spec derives from."""
        password = bytearray(b"sensitive")
        spec = PBEKeySpec(password, b"\x01" * 32, 10000, 128)
        for i in range(len(password)):
            password[i] = 0
        assert spec.get_password() == b"sensitive"

    @pytest.mark.parametrize(
        "salt,iterations,bits",
        [(b"", 10000, 128), (b"\x01" * 32, 0, 128), (b"\x01" * 32, 10000, 0)],
    )
    def test_invalid_parameters(self, salt, iterations, bits):
        with pytest.raises(InvalidAlgorithmParameterError):
            PBEKeySpec(bytearray(b"pwd"), salt, iterations, bits)

    def test_repr_states(self):
        spec = _spec()
        assert "armed" in repr(spec)
        spec.clear_password()
        assert "cleared" in repr(spec)


class TestIvParameterSpec:
    def test_get_iv_copies(self):
        buffer = bytearray(b"\x01" * 16)
        spec = IvParameterSpec(buffer)
        buffer[0] = 0xFF
        assert spec.get_iv() == b"\x01" * 16

    def test_empty_rejected(self):
        with pytest.raises(InvalidAlgorithmParameterError):
            IvParameterSpec(b"")


class TestGCMParameterSpec:
    def test_accessors(self):
        spec = GCMParameterSpec(128, b"\x02" * 12)
        assert spec.get_tag_length() == 128
        assert spec.get_iv() == b"\x02" * 12

    @pytest.mark.parametrize("tag", [0, 64, 127, 130])
    def test_bad_tag_lengths(self, tag):
        with pytest.raises(InvalidAlgorithmParameterError):
            GCMParameterSpec(tag, b"\x02" * 12)

    def test_empty_nonce_rejected(self):
        with pytest.raises(InvalidAlgorithmParameterError):
            GCMParameterSpec(128, b"")
