"""The Clafer-like variability language and solver."""

from __future__ import annotations

import pytest

from repro.oldgen.clafer import ClaferError, ClaferModel, ClaferSolver, Constraint

MODEL = """
// demo model
abstract Algo
    name -> string
    security -> integer

root
    base
        size -> integer
        [size = 32]
    xor choice
        weak : Algo
            [name = "WEAK"]
            [security = 1]
        strong : Algo
            [name = "STRONG"]
            [security = 5]
    opt extra
        [flag = 1]
        [security = 1]
"""


@pytest.fixture()
def model():
    return ClaferModel.parse(MODEL)


class TestParsing:
    def test_structure(self, model):
        root = model.root.find("root")
        assert root is not None
        assert [c.name for c in root.children] == ["base", "choice", "extra"]

    def test_abstract_collected(self, model):
        assert "Algo" in model.abstracts

    def test_inheritance_copies_attributes(self, model):
        weak = model.root.find("weak")
        assert "name" in weak.attributes
        assert "security" in weak.attributes

    def test_assignments(self, model):
        base = model.root.find("base")
        assert base.assignments["size"] == 32

    def test_kinds(self, model):
        assert model.root.find("choice").kind == "xor"
        assert model.root.find("extra").kind == "opt"
        assert model.root.find("base").kind == "mandatory"

    def test_comments_ignored(self):
        parsed = ClaferModel.parse("// only a comment\nroot\n    [x = 1]\n")
        assert parsed.root.find("root").assignments["x"] == 1

    def test_bad_indent_rejected(self):
        with pytest.raises(ClaferError):
            ClaferModel.parse("root\n   child\n")  # 3 spaces

    def test_unknown_superclass_rejected(self):
        with pytest.raises(ClaferError):
            ClaferModel.parse("thing : Ghost\n")

    def test_bad_constraint_rejected(self):
        with pytest.raises(ClaferError):
            ClaferModel.parse("root\n    [x ~ 3]\n")


class TestConstraint:
    @pytest.mark.parametrize(
        "op,value,actual,expected",
        [
            ("=", 3, 3, True),
            ("!=", 3, 4, True),
            (">=", 3, 3, True),
            (">", 3, 3, False),
            ("<=", 3, 2, True),
            ("<", 3, 3, False),
            ("in", [1, 2], 2, True),
            ("in", [1, 2], 5, False),
        ],
    )
    def test_check(self, op, value, actual, expected):
        assert Constraint("x", op, value).check(actual) is expected

    def test_none_never_satisfies(self):
        assert not Constraint("x", "=", 1).check(None)


class TestSolver:
    def test_enumerates_all_configurations(self, model):
        # 2 xor alternatives x 2 optional states = 4.
        assert len(ClaferSolver(model).enumerate()) == 4

    def test_solve_maximizes_security(self, model):
        best = ClaferSolver(model).solve()
        assert best.value("choice.name") == "STRONG"
        assert best.has("extra")  # the optional adds security 1
        assert best.score == 6

    def test_document_nesting(self, model):
        doc = ClaferSolver(model).solve().as_document()
        assert doc["choice"]["name"] == "STRONG"
        assert doc["base"]["size"] == 32

    def test_unsatisfiable_model(self):
        bad = ClaferModel.parse("root\n    thing\n        [x = 1]\n        [x >= 2]\n")
        with pytest.raises(ClaferError):
            ClaferSolver(bad).solve()

    def test_bundled_models_solve(self):
        from repro.oldgen.generator import ARTEFACTS, OldGenerator

        old = OldGenerator()
        for slug in old.supported_slugs():
            model_path, _ = old.artefact_paths(slug)
            configuration = ClaferSolver(ClaferModel.parse_file(model_path)).solve()
            assert configuration.score > 0


class TestPerformanceTiebreak:
    def test_equal_security_breaks_on_performance(self):
        model = ClaferModel.parse(
            "root\n"
            "    xor choice\n"
            "        slow\n"
            '            [name = "SLOW"]\n'
            "            [security = 3]\n"
            "            [performance = 1]\n"
            "        fast\n"
            '            [name = "FAST"]\n'
            "            [security = 3]\n"
            "            [performance = 4]\n"
        )
        best = ClaferSolver(model).solve()
        assert best.value("choice.name") == "FAST"
        assert best.performance == 4

    def test_security_still_dominates(self):
        model = ClaferModel.parse(
            "root\n"
            "    xor choice\n"
            "        secure\n"
            '            [name = "SECURE"]\n'
            "            [security = 5]\n"
            "            [performance = 1]\n"
            "        quick\n"
            '            [name = "QUICK"]\n'
            "            [security = 1]\n"
            "            [performance = 9]\n"
        )
        assert ClaferSolver(model).solve().value("choice.name") == "SECURE"
