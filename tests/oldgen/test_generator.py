"""The legacy old-gen pipeline end to end."""

from __future__ import annotations

import pytest

from repro.oldgen import OldGenError, OldGenerator


@pytest.fixture(scope="module")
def old():
    return OldGenerator()


def test_supported_slugs_match_table2(old):
    assert old.supported_slugs() == (
        "digital_signing",
        "hybrid_bytes",
        "hybrid_files",
        "hybrid_strings",
        "password_storage",
        "pbe_bytes",
        "pbe_files",
        "pbe_strings",
    )


@pytest.mark.parametrize(
    "slug",
    [
        "pbe_files",
        "pbe_strings",
        "pbe_bytes",
        "hybrid_files",
        "hybrid_strings",
        "hybrid_bytes",
        "password_storage",
        "digital_signing",
    ],
)
def test_every_legacy_use_case_compiles(old, slug):
    module = old.generate(slug)
    module.compile_check()
    assert "CogniCrypt_old-gen" in module.source


def test_solver_picks_most_secure(old):
    module = old.generate("pbe_files")
    assert "PBKDF2WithHmacSHA512" in module.source  # highest-security digest
    assert "AES/GCM/NoPadding" in module.source


def test_user_input_overrides_model(old):
    module = old.generate("pbe_bytes", user_input={"kdf": {"iterations": 250000}})
    assert "250000" in module.source


def test_unknown_slug_rejected(old):
    with pytest.raises(OldGenError, match="legacy use cases"):
        old.generate("string_hashing")


def test_artefact_paths_exist(old):
    for slug in old.supported_slugs():
        model, template = old.artefact_paths(slug)
        assert model.exists(), model
        assert template.exists(), template


def test_pbe_output_executes(old, tmp_path):
    import importlib.util
    import sys

    module = old.generate("pbe_bytes")
    path = tmp_path / "legacy.py"
    path.write_text(module.source)
    spec = importlib.util.spec_from_file_location("legacy_pbe", path)
    loaded = importlib.util.module_from_spec(spec)
    sys.modules["legacy_pbe"] = loaded
    spec.loader.exec_module(loaded)
    encryptor = loaded.SecureBytesEncryptor()
    key = encryptor.generate_key(bytearray(b"old pw"))
    assert encryptor.decrypt(key, encryptor.encrypt(key, b"legacy data")) == b"legacy data"


def test_password_storage_output_executes(old, tmp_path):
    import importlib.util
    import sys

    module = old.generate("password_storage")
    path = tmp_path / "vault.py"
    path.write_text(module.source)
    spec = importlib.util.spec_from_file_location("legacy_vault", path)
    loaded = importlib.util.module_from_spec(spec)
    sys.modules["legacy_vault"] = loaded
    spec.loader.exec_module(loaded)
    vault = loaded.PasswordVault()
    stored = vault.hash_password(bytearray(b"pw"))
    assert vault.verify_password(bytearray(b"pw"), stored)
    assert not vault.verify_password(bytearray(b"no"), stored)
