"""The XSLT-subset engine."""

from __future__ import annotations

import pytest

from repro.oldgen.xsl import XslError, XslTemplate

HEADER = '<?xml version="1.0"?>\n<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">\n<xsl:template match="/">'
FOOTER = "</xsl:template>\n</xsl:stylesheet>"


def render(body, document):
    return XslTemplate(HEADER + body + FOOTER).transform(document)


def test_text_verbatim():
    assert render("<xsl:text>hello\nworld</xsl:text>", {}) == "hello\nworld"


def test_value_of():
    assert render('<xsl:value-of select="a/b"/>', {"a": {"b": 42}}) == "42"


def test_value_of_missing_path():
    with pytest.raises(XslError, match="a/b"):
        render('<xsl:value-of select="a/b"/>', {"a": {}})


def test_if_string_comparison():
    body = "<xsl:if test=\"mode = 'GCM'\"><xsl:text>yes</xsl:text></xsl:if>"
    assert render(body, {"mode": "GCM"}) == "yes"
    assert render(body, {"mode": "CBC"}) == ""


def test_if_numeric_comparison():
    body = '<xsl:if test="bits >= 128"><xsl:text>ok</xsl:text></xsl:if>'
    assert render(body, {"bits": 256}) == "ok"
    assert render(body, {"bits": 64}) == ""


def test_if_existence():
    body = '<xsl:if test="feature"><xsl:text>present</xsl:text></xsl:if>'
    assert render(body, {"feature": {}}) == "present"
    assert render(body, {}) == ""


def test_choose_when_otherwise():
    body = (
        "<xsl:choose>"
        "<xsl:when test=\"mode = 'GCM'\"><xsl:text>gcm</xsl:text></xsl:when>"
        "<xsl:when test=\"mode = 'CBC'\"><xsl:text>cbc</xsl:text></xsl:when>"
        "<xsl:otherwise><xsl:text>other</xsl:text></xsl:otherwise>"
        "</xsl:choose>"
    )
    assert render(body, {"mode": "GCM"}) == "gcm"
    assert render(body, {"mode": "CBC"}) == "cbc"
    assert render(body, {"mode": "CTR"}) == "other"


def test_first_matching_when_wins():
    body = (
        "<xsl:choose>"
        '<xsl:when test="x >= 1"><xsl:text>first</xsl:text></xsl:when>'
        '<xsl:when test="x >= 0"><xsl:text>second</xsl:text></xsl:when>'
        "</xsl:choose>"
    )
    assert render(body, {"x": 5}) == "first"


def test_structural_whitespace_not_emitted():
    body = "\n  <xsl:text>only this</xsl:text>\n  "
    assert render(body, {}) == "only this"


def test_unsupported_element_rejected():
    with pytest.raises(XslError, match="unsupported"):
        render('<xsl:for-each select="x"/>', {"x": 1})


def test_malformed_xml_rejected():
    with pytest.raises(XslError, match="parse error"):
        XslTemplate("<not-closed")


def test_root_must_be_stylesheet():
    with pytest.raises(XslError, match="stylesheet"):
        XslTemplate("<wrong/>")


def test_exactly_one_root_template_required():
    source = (
        '<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">'
        "</xsl:stylesheet>"
    )
    with pytest.raises(XslError, match="template"):
        XslTemplate(source)
