"""Predicate machinery: instances, grants, invalidation, linking."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.codegen.fluent import ConsideredRule, GenerationRequest
from repro.crysl import parse_rule
from repro.predicates import (
    RuleInstance,
    TemplateBinding,
    compute_links,
    emission_order,
    establishes_path,
    granted_predicates,
    invalidating_events,
    link_graph,
    unlinked_instances,
)


def _pbe_instances(ruleset):
    request = GenerationRequest(
        considered=[
            ConsideredRule("repro.jca.SecureRandom"),
            ConsideredRule("repro.jca.PBEKeySpec"),
            ConsideredRule("repro.jca.SecretKeyFactory"),
            ConsideredRule("repro.jca.SecretKey"),
            ConsideredRule("repro.jca.SecretKeySpec"),
        ]
    )
    return request.to_instances(ruleset)


class TestRuleInstance:
    def test_alias_disambiguates_repeats(self, ruleset):
        request = GenerationRequest(
            considered=[
                ConsideredRule("repro.jca.Cipher"),
                ConsideredRule("repro.jca.Cipher"),
            ]
        )
        first, second = request.to_instances(ruleset)
        assert first.alias == "cipher"
        assert second.alias == "cipher_2"

    def test_creation_events(self, ruleset):
        pbe = RuleInstance(ruleset.get("PBEKeySpec"), 0)
        assert [e.label for e in pbe.creation_events()] == ["c1"]
        keypair = RuleInstance(ruleset.get("KeyPair"), 0)
        assert not keypair.has_creation_event()


class TestGrantedPredicates:
    def test_unanchored_always_granted(self, ruleset):
        rule = ruleset.get("SecretKeyFactory")
        granted = granted_predicates(rule, ("g1", "gs1"))
        assert [p.name for p in granted] == ["generated_key"]

    def test_anchored_requires_anchor_on_path(self, ruleset):
        rule = ruleset.get("KeyPair")
        assert [p.name for p in granted_predicates(rule, ("gpub",))] == ["pub_key"]
        assert [p.name for p in granted_predicates(rule, ("gpriv",))] == ["priv_key"]

    def test_aggregate_anchor(self, ruleset):
        rule = ruleset.get("Cipher")
        names = [p.name for p in granted_predicates(rule, ("g1", "i1", "f1"))]
        assert "encrypted" in names
        assert "wrapped_key" not in names


class TestInvalidatingEvents:
    def test_clear_password_deferred(self, ruleset):
        rule = ruleset.get("PBEKeySpec")
        assert invalidating_events(rule, ("c1", "cP")) == ("cP",)

    def test_no_negates_no_invalidation(self, ruleset):
        rule = ruleset.get("Cipher")
        assert invalidating_events(rule, ("g1", "i1", "f1")) == ()

    def test_anchor_itself_not_invalidating(self, ruleset):
        rule = ruleset.get("PBEKeySpec")
        assert invalidating_events(rule, ("c1",)) == ()


class TestLinking:
    def test_pbe_chain_links(self, ruleset):
        links = compute_links(_pbe_instances(ruleset))
        as_tuples = {
            (l.predicate, l.producer, l.producer_object, l.consumer, l.consumer_object)
            for l in links
        }
        assert ("randomized", 0, "out", 1, "salt") in as_tuples
        assert ("specced_key", 1, "this", 2, "key_spec") in as_tuples
        assert ("generated_key", 2, "key", 3, "this") in as_tuples
        assert ("key_material", 3, "key_material", 4, "key_material") in as_tuples

    def test_links_only_point_forward(self, ruleset):
        for link in compute_links(_pbe_instances(ruleset)):
            assert link.producer < link.consumer

    def test_graph_establishes_paths(self, ruleset):
        instances = _pbe_instances(ruleset)
        graph = link_graph(instances, compute_links(instances))
        assert establishes_path(graph, 0, 4)  # SecureRandom feeds SecretKeySpec
        assert not establishes_path(graph, 4, 0)

    def test_emission_order_is_topological(self, ruleset):
        instances = _pbe_instances(ruleset)
        order = emission_order(instances, compute_links(instances))
        assert order == [0, 1, 2, 3, 4]

    def test_unlinked_detection(self, ruleset):
        instances = [
            RuleInstance(ruleset.get("SecureRandom"), 0),
            RuleInstance(ruleset.get("MessageDigest"), 1),
        ]
        # No link between them; neither has template outputs.
        assert unlinked_instances(instances, []) == [0, 1]

    def test_return_target_counts_as_involved(self, ruleset):
        instances = [
            RuleInstance(ruleset.get("MessageDigest"), 0, return_target="digest"),
        ]
        assert unlinked_instances(instances, []) == []
