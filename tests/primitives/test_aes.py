"""AES block cipher: FIPS-197 known answers plus structural properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.aes import AES, BLOCK_SIZE, INV_SBOX, SBOX, expand_key
from repro.primitives.errors import InvalidBlockSize, InvalidKeyLength

# FIPS-197 appendix C example vectors.
_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,expected_hex", _VECTORS)
def test_fips197_known_answers(key_hex, expected_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(_PLAINTEXT).hex() == expected_hex


@pytest.mark.parametrize("key_hex,expected_hex", _VECTORS)
def test_fips197_decrypt_inverts(key_hex, expected_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(expected_hex)) == _PLAINTEXT


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))
    assert all(INV_SBOX[SBOX[x]] == x for x in range(256))


def test_sbox_known_entries():
    # S(0x00) = 0x63 and S(0x53) = 0xED are standard spot checks.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x53] == 0xED


def test_round_counts():
    assert AES(bytes(16)).rounds == 10
    assert AES(bytes(24)).rounds == 12
    assert AES(bytes(32)).rounds == 14


def test_key_schedule_size():
    assert len(expand_key(bytes(16))) == 11
    assert len(expand_key(bytes(32))) == 15
    assert all(len(rk) == 16 for rk in expand_key(bytes(24)))


@pytest.mark.parametrize("bad_length", [0, 1, 15, 17, 20, 31, 33, 64])
def test_invalid_key_lengths_rejected(bad_length):
    with pytest.raises(InvalidKeyLength):
        AES(bytes(bad_length))


@pytest.mark.parametrize("bad_length", [0, 1, 15, 17, 32])
def test_invalid_block_lengths_rejected(bad_length):
    cipher = AES(bytes(16))
    with pytest.raises(InvalidBlockSize):
        cipher.encrypt_block(bytes(bad_length))
    with pytest.raises(InvalidBlockSize):
        cipher.decrypt_block(bytes(bad_length))


@settings(max_examples=30, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16) | st.binary(min_size=32, max_size=32),
    block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
)
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=20, deadline=None)
@given(block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
def test_key_sensitivity(block):
    """Flipping one key bit must change the ciphertext."""
    key_a = bytes(16)
    key_b = bytes([1]) + bytes(15)
    assert AES(key_a).encrypt_block(block) != AES(key_b).encrypt_block(block)


def test_matches_pyca_reference():
    """Cross-check against the installed `cryptography` package."""
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    import os

    for key_size in (16, 24, 32):
        key = os.urandom(key_size)
        block = os.urandom(16)
        encryptor = Cipher(algorithms.AES(key), modes.ECB()).encryptor()
        reference = encryptor.update(block) + encryptor.finalize()
        assert AES(key).encrypt_block(block) == reference
