"""Constant-time comparison helper."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.primitives.ct import constant_time_equals


def test_equal():
    assert constant_time_equals(b"same", b"same")


def test_unequal_content():
    assert not constant_time_equals(b"aaaa", b"aaab")


def test_unequal_length():
    assert not constant_time_equals(b"short", b"longer")


def test_empty():
    assert constant_time_equals(b"", b"")


@given(a=st.binary(max_size=64), b=st.binary(max_size=64))
def test_agrees_with_operator(a, b):
    assert constant_time_equals(a, b) == (a == b)
