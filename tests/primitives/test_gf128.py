"""GF(2^128) arithmetic and GHASH."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.gf128 import GHASH, block_to_int, gf_mult, int_to_block

_ELEMENTS = st.integers(min_value=0, max_value=(1 << 128) - 1)


def test_block_roundtrip():
    block = bytes(range(16))
    assert int_to_block(block_to_int(block)) == block


def test_block_length_enforced():
    with pytest.raises(ValueError):
        block_to_int(bytes(15))


def test_multiply_by_zero():
    assert gf_mult(0, 12345) == 0
    assert gf_mult(12345, 0) == 0


def test_identity_element():
    """The field's multiplicative identity in GCM bit order is the block
    0x80000...0 (coefficient of x^0 is the MSB of the first byte)."""
    one = 1 << 127
    for value in (1, 42, (1 << 128) - 1):
        assert gf_mult(one, value) == value
        assert gf_mult(value, one) == value


@settings(max_examples=30, deadline=None)
@given(a=_ELEMENTS, b=_ELEMENTS)
def test_commutativity(a, b):
    assert gf_mult(a, b) == gf_mult(b, a)


@settings(max_examples=20, deadline=None)
@given(a=_ELEMENTS, b=_ELEMENTS, c=_ELEMENTS)
def test_distributivity(a, b, c):
    """a*(b^c) == a*b ^ a*c — addition in GF(2^n) is XOR."""
    assert gf_mult(a, b ^ c) == gf_mult(a, b) ^ gf_mult(a, c)


def test_ghash_zero_subkey_absorbs_everything():
    assert GHASH(bytes(16)).update(b"x" * 16).digest() == bytes(16)


def test_ghash_incremental_padding():
    g1 = GHASH(bytes(range(16)))
    g1.update_padded(b"abc")  # zero-padded to one block
    g2 = GHASH(bytes(range(16)))
    g2.update(b"abc" + bytes(13))
    assert g1.digest() == g2.digest()


def test_ghash_matches_gcm_tag_computation():
    """GHASH is validated end-to-end through the NIST GCM vector in
    test_modes; here we only check self-consistency of chaining."""
    h = bytes(range(16))
    once = GHASH(h).update(b"A" * 16).update(b"B" * 16).digest()
    again = GHASH(h).update_padded(b"A" * 16 + b"B" * 16).digest()
    assert once == again
