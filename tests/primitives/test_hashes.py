"""Hashes: the pure SHA-256 against hashlib, registry behaviour."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.hashes import (
    DIGEST_SIZES,
    SECURE_DIGESTS,
    SHA256,
    canonical_name,
    hash_bytes,
    hash_function,
    new_hash,
)

_NIST_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
]


@pytest.mark.parametrize("message,expected", _NIST_VECTORS)
def test_nist_vectors(message, expected):
    assert SHA256(message).hexdigest() == expected


def test_million_a():
    digest = SHA256(b"a" * 1_000_000).hexdigest()
    assert digest == "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=500))
def test_matches_hashlib_property(data):
    assert SHA256(data).digest() == hashlib.sha256(data).digest()


@given(chunks=st.lists(st.binary(max_size=100), max_size=10))
def test_incremental_equals_oneshot(chunks):
    incremental = SHA256()
    for chunk in chunks:
        incremental.update(chunk)
    assert incremental.digest() == SHA256(b"".join(chunks)).digest()


def test_digest_does_not_consume_state():
    hasher = SHA256(b"abc")
    first = hasher.digest()
    assert hasher.digest() == first
    hasher.update(b"def")
    assert hasher.digest() == SHA256(b"abcdef").digest()


def test_boundary_lengths():
    """Padding boundaries: 55, 56, 63, 64, 65 bytes."""
    for size in (55, 56, 63, 64, 65, 119, 120):
        data = bytes(range(size % 251)) * (size // max(size % 251, 1) + 1)
        data = data[:size]
        assert SHA256(data).digest() == hashlib.sha256(data).digest()


@pytest.mark.parametrize(
    "spelling,expected",
    [
        ("sha256", "SHA-256"),
        ("SHA-256", "SHA-256"),
        ("SHA256", "SHA-256"),
        ("sha_512", "SHA-512"),
        ("md5", "MD5"),
    ],
)
def test_canonical_names(spelling, expected):
    assert canonical_name(spelling) == expected


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        canonical_name("SHA-3-256")


@pytest.mark.parametrize("name", list(DIGEST_SIZES))
def test_registry_digest_sizes(name):
    assert len(hash_bytes(name, b"test")) == DIGEST_SIZES[name]


def test_new_hash_dispatch():
    assert isinstance(new_hash("SHA-256"), SHA256)
    assert new_hash("SHA-512").digest() == hashlib.sha512(b"").digest()


def test_hash_function_closure():
    sha384 = hash_function("sha384")
    assert sha384(b"x") == hashlib.sha384(b"x").digest()


def test_secure_digests_exclude_legacy():
    assert "SHA-1" not in SECURE_DIGESTS
    assert "MD5" not in SECURE_DIGESTS
