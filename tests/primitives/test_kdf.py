"""KDFs: PBKDF2 against hashlib, HKDF against RFC 5869 vectors."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.errors import ParameterError
from repro.primitives.kdf import hkdf, hkdf_expand, hkdf_extract, pbkdf2


class TestPbkdf2:
    def test_matches_hashlib_sha256(self):
        ours = pbkdf2(b"password", b"salt", 4096, 32)
        reference = hashlib.pbkdf2_hmac("sha256", b"password", b"salt", 4096, 32)
        assert ours == reference

    def test_matches_hashlib_multiblock(self):
        """Output longer than one digest exercises block iteration."""
        ours = pbkdf2(b"passwordPASSWORD", b"saltSALT", 100, 100, "SHA-512")
        reference = hashlib.pbkdf2_hmac(
            "sha512", b"passwordPASSWORD", b"saltSALT", 100, 100
        )
        assert ours == reference

    @settings(max_examples=10, deadline=None)
    @given(
        password=st.binary(min_size=1, max_size=40),
        salt=st.binary(min_size=1, max_size=40),
        length=st.integers(min_value=1, max_value=64),
    )
    def test_matches_hashlib_property(self, password, salt, length):
        assert pbkdf2(password, salt, 10, length) == hashlib.pbkdf2_hmac(
            "sha256", password, salt, 10, length
        )

    def test_iteration_sensitivity(self):
        assert pbkdf2(b"p", b"s", 100, 16) != pbkdf2(b"p", b"s", 101, 16)

    @pytest.mark.parametrize("iterations", [0, -1])
    def test_rejects_nonpositive_iterations(self, iterations):
        with pytest.raises(ParameterError):
            pbkdf2(b"p", b"s", iterations, 16)

    def test_rejects_zero_length(self):
        with pytest.raises(ParameterError):
            pbkdf2(b"p", b"s", 10, 0)


class TestHkdf:
    def test_rfc5869_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_empty_salt_and_info(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf(ikm, b"", b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_expand_limit(self):
        prk = hkdf_extract(b"salt", b"ikm")
        with pytest.raises(ParameterError):
            hkdf_expand(prk, b"", 255 * 32 + 1)

    @given(length=st.integers(min_value=1, max_value=128))
    def test_output_length(self, length):
        assert len(hkdf(b"ikm", b"salt", b"info", length)) == length
