"""HMAC: RFC 4231 vectors and stdlib equivalence."""

from __future__ import annotations

import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.mac import HMAC, hmac_digest

# RFC 4231 test case 1 and 2 (SHA-256/384/512).
_RFC4231 = [
    (
        bytes.fromhex("0b" * 20),
        b"Hi There",
        {
            "SHA-256": "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            "SHA-384": (
                "afd03944d84895626b0825f4ab46907f15f9dadbe4101ec682aa034c7cebc59c"
                "faea9ea9076ede7f4af152e8b2fa9cb6"
            ),
            "SHA-512": (
                "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
                "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
            ),
        },
    ),
    (
        b"Jefe",
        b"what do ya want for nothing?",
        {
            "SHA-256": "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        },
    ),
]


@pytest.mark.parametrize("key,message,digests", _RFC4231)
def test_rfc4231_vectors(key, message, digests):
    for algorithm, expected in digests.items():
        assert hmac_digest(key, message, algorithm).hex() == expected


def test_long_key_is_hashed_first():
    """Keys longer than the block size are pre-hashed (RFC 2104)."""
    key = b"k" * 200
    assert hmac_digest(key, b"m") == stdlib_hmac.new(key, b"m", "sha256").digest()


def test_incremental_equals_oneshot():
    mac = HMAC(b"key", "SHA-256")
    mac.update(b"part one, ")
    mac.update(b"part two")
    assert mac.digest() == hmac_digest(b"key", b"part one, part two")


def test_digest_is_repeatable():
    mac = HMAC(b"key").update(b"data")
    assert mac.digest() == mac.digest()


@settings(max_examples=40, deadline=None)
@given(key=st.binary(min_size=1, max_size=100), data=st.binary(max_size=200))
def test_matches_stdlib_property(key, data):
    assert hmac_digest(key, data) == stdlib_hmac.new(key, data, "sha256").digest()


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=1, max_size=80), data=st.binary(max_size=80))
def test_matches_stdlib_sha512(key, data):
    assert hmac_digest(key, data, "SHA-512") == stdlib_hmac.new(key, data, "sha512").digest()


def test_different_keys_different_tags():
    assert hmac_digest(b"key-a", b"m") != hmac_digest(b"key-b", b"m")
