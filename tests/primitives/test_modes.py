"""Block-cipher modes: reference equivalence, tampering, properties."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.errors import InvalidBlockSize, InvalidTag, ParameterError
from repro.primitives.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    gcm_decrypt,
    gcm_encrypt,
)


class TestCbc:
    def test_roundtrip(self):
        key, iv = os.urandom(16), os.urandom(16)
        data = b"some plaintext longer than a block boundary"
        assert cbc_decrypt(key, iv, cbc_encrypt(key, iv, data)) == data

    def test_empty_plaintext(self):
        key, iv = os.urandom(32), os.urandom(16)
        ciphertext = cbc_encrypt(key, iv, b"")
        assert len(ciphertext) == 16  # one full padding block
        assert cbc_decrypt(key, iv, ciphertext) == b""

    def test_matches_pyca(self):
        from cryptography.hazmat.primitives import padding as pyca_padding
        from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

        key, iv, data = os.urandom(16), os.urandom(16), os.urandom(333)
        padder = pyca_padding.PKCS7(128).padder()
        encryptor = Cipher(algorithms.AES(key), modes.CBC(iv)).encryptor()
        reference = encryptor.update(padder.update(data) + padder.finalize())
        reference += encryptor.finalize()
        assert cbc_encrypt(key, iv, data) == reference

    def test_bad_iv_length(self):
        with pytest.raises(ParameterError):
            cbc_encrypt(os.urandom(16), os.urandom(12), b"data")

    def test_unaligned_ciphertext(self):
        with pytest.raises(InvalidBlockSize):
            cbc_decrypt(os.urandom(16), os.urandom(16), b"short")

    def test_same_plaintext_same_iv_is_deterministic(self):
        key, iv = os.urandom(16), os.urandom(16)
        assert cbc_encrypt(key, iv, b"x" * 20) == cbc_encrypt(key, iv, b"x" * 20)

    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        key, iv = bytes(16), bytes(range(16))
        assert cbc_decrypt(key, iv, cbc_encrypt(key, iv, data)) == data


class TestCtr:
    def test_involution(self):
        key, nonce = os.urandom(16), os.urandom(16)
        data = os.urandom(100)
        once = ctr_transform(key, nonce, data)
        assert ctr_transform(key, nonce, once) == data

    def test_length_preserving(self):
        key, nonce = os.urandom(16), os.urandom(16)
        for size in (0, 1, 15, 16, 17, 100):
            assert len(ctr_transform(key, nonce, bytes(size))) == size

    def test_matches_pyca(self):
        from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

        key, nonce, data = os.urandom(32), os.urandom(16), os.urandom(77)
        encryptor = Cipher(algorithms.AES(key), modes.CTR(nonce)).encryptor()
        assert ctr_transform(key, nonce, data) == encryptor.update(data) + encryptor.finalize()

    def test_bad_nonce_length(self):
        with pytest.raises(ParameterError):
            ctr_transform(os.urandom(16), os.urandom(8), b"data")


class TestGcm:
    def test_roundtrip_with_aad(self):
        key, nonce = os.urandom(16), os.urandom(12)
        data, aad = b"payload", b"header"
        assert gcm_decrypt(key, nonce, gcm_encrypt(key, nonce, data, aad), aad) == data

    def test_matches_pyca_aesgcm(self):
        from cryptography.hazmat.primitives.ciphers.aead import AESGCM

        key, nonce = os.urandom(32), os.urandom(12)
        data, aad = os.urandom(129), b"associated"
        assert gcm_encrypt(key, nonce, data, aad) == AESGCM(key).encrypt(nonce, data, aad)

    def test_nist_sp800_38d_vector(self):
        """Test case 3 of the original GCM validation suite."""
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        nonce = bytes.fromhex("cafebabefacedbaddecaf888")
        plaintext = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
        )
        expected_ct = bytes.fromhex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
        )
        expected_tag = bytes.fromhex("4d5c2af327cd64a62cf35abd2ba6fab4")
        out = gcm_encrypt(key, nonce, plaintext)
        assert out[:-16] == expected_ct
        assert out[-16:] == expected_tag

    def test_tampered_ciphertext_rejected(self):
        key, nonce = os.urandom(16), os.urandom(12)
        blob = bytearray(gcm_encrypt(key, nonce, b"secret"))
        blob[0] ^= 1
        with pytest.raises(InvalidTag):
            gcm_decrypt(key, nonce, bytes(blob))

    def test_tampered_tag_rejected(self):
        key, nonce = os.urandom(16), os.urandom(12)
        blob = bytearray(gcm_encrypt(key, nonce, b"secret"))
        blob[-1] ^= 1
        with pytest.raises(InvalidTag):
            gcm_decrypt(key, nonce, bytes(blob))

    def test_wrong_aad_rejected(self):
        key, nonce = os.urandom(16), os.urandom(12)
        blob = gcm_encrypt(key, nonce, b"secret", b"aad-1")
        with pytest.raises(InvalidTag):
            gcm_decrypt(key, nonce, blob, b"aad-2")

    def test_short_input_rejected(self):
        with pytest.raises(InvalidTag):
            gcm_decrypt(os.urandom(16), os.urandom(12), b"too-short")

    def test_empty_nonce_rejected(self):
        with pytest.raises(ParameterError):
            gcm_encrypt(os.urandom(16), b"", b"data")

    def test_long_nonce_j0_path(self):
        """Nonces other than 96 bits take the GHASH-derived J0 path."""
        from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

        key, nonce, data = os.urandom(16), os.urandom(20), os.urandom(40)
        encryptor = Cipher(algorithms.AES(key), modes.GCM(nonce)).encryptor()
        reference = encryptor.update(data) + encryptor.finalize()
        out = gcm_encrypt(key, nonce, data)
        assert out[:-16] == reference
        assert out[-16:] == encryptor.tag

    @settings(max_examples=25, deadline=None)
    @given(data=st.binary(max_size=100), aad=st.binary(max_size=40))
    def test_roundtrip_property(self, data, aad):
        key, nonce = bytes(16), bytes(12)
        assert gcm_decrypt(key, nonce, gcm_encrypt(key, nonce, data, aad), aad) == data
