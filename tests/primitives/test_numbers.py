"""Number theory: Miller–Rabin, prime generation, modular arithmetic."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.errors import ParameterError
from repro.primitives.numbers import (
    egcd,
    generate_prime,
    i2osp,
    is_probable_prime,
    modinv,
    os2ip,
)

_KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, (1 << 61) - 1, 2**89 - 1]
_KNOWN_COMPOSITES = [1, 4, 100, 561, 1105, 6601, 8911, 2**67 - 1]  # incl. Carmichaels


@pytest.mark.parametrize("n", _KNOWN_PRIMES)
def test_known_primes(n):
    assert is_probable_prime(n)


@pytest.mark.parametrize("n", _KNOWN_COMPOSITES)
def test_known_composites(n):
    assert not is_probable_prime(n)


def test_negative_and_zero():
    assert not is_probable_prime(0)
    assert not is_probable_prime(-7)


@given(st.integers(min_value=2, max_value=10_000))
def test_agrees_with_trial_division(n):
    reference = n > 1 and all(n % d for d in range(2, int(math.isqrt(n)) + 1))
    assert is_probable_prime(n) == reference


def test_generate_prime_bit_length():
    for bits in (64, 128, 256):
        p = generate_prime(bits)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generate_prime_rejects_tiny():
    with pytest.raises(ParameterError):
        generate_prime(4)


@given(
    a=st.integers(min_value=1, max_value=10**9),
    b=st.integers(min_value=1, max_value=10**9),
)
def test_egcd_invariant(a, b):
    g, x, y = egcd(a, b)
    assert g == math.gcd(a, b)
    assert a * x + b * y == g


@given(a=st.integers(min_value=1, max_value=10**6))
def test_modinv_property(a):
    m = 1_000_003  # prime modulus: every nonzero element invertible
    inverse = modinv(a, m)
    assert (a * inverse) % m == 1


def test_modinv_non_coprime_rejected():
    with pytest.raises(ParameterError):
        modinv(6, 9)


@given(x=st.integers(min_value=0, max_value=2**64 - 1))
def test_i2osp_os2ip_roundtrip(x):
    assert os2ip(i2osp(x, 8)) == x


def test_i2osp_overflow_rejected():
    with pytest.raises(ParameterError):
        i2osp(256, 1)
