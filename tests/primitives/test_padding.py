"""PKCS#7 padding: spec behaviour and malformed inputs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.primitives.errors import InvalidPadding
from repro.primitives.padding import pad, unpad


def test_pad_aligns_to_block():
    for size in range(0, 50):
        assert len(pad(bytes(size), 16)) % 16 == 0


def test_full_block_appended_when_aligned():
    padded = pad(bytes(16), 16)
    assert len(padded) == 32
    assert padded[-16:] == bytes([16]) * 16


def test_known_padding_value():
    assert pad(b"YELLOW SUBMARINE", 20) == b"YELLOW SUBMARINE\x04\x04\x04\x04"


@given(data=st.binary(max_size=200), block=st.integers(min_value=1, max_value=255))
def test_roundtrip_property(data, block):
    assert unpad(pad(data, block), block) == data


def test_unpad_rejects_empty():
    with pytest.raises(InvalidPadding):
        unpad(b"", 16)


def test_unpad_rejects_unaligned():
    with pytest.raises(InvalidPadding):
        unpad(bytes(15), 16)


def test_unpad_rejects_zero_count():
    with pytest.raises(InvalidPadding):
        unpad(bytes(15) + b"\x00", 16)


def test_unpad_rejects_count_above_block():
    with pytest.raises(InvalidPadding):
        unpad(bytes(15) + b"\x11", 16)


def test_unpad_rejects_inconsistent_bytes():
    # Count byte says 4 but the third-to-last byte disagrees.
    block = bytes(12) + b"\x04\x03\x04\x04"
    with pytest.raises(InvalidPadding):
        unpad(block, 16)


@pytest.mark.parametrize("bad_block", [0, 256, -1])
def test_block_size_bounds(bad_block):
    with pytest.raises(ValueError):
        pad(b"x", bad_block)
    with pytest.raises(ValueError):
        unpad(b"x", bad_block)
