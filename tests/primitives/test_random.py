"""Random sources: DRBG determinism and OS source sanity."""

from __future__ import annotations

import pytest

from repro.primitives.errors import ParameterError
from repro.primitives.random import HmacDrbg, OsRandomSource


class TestOsRandomSource:
    def test_length(self):
        source = OsRandomSource()
        for size in (0, 1, 16, 1000):
            assert len(source.read(size)) == size

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            OsRandomSource().read(-1)

    def test_not_constant(self):
        source = OsRandomSource()
        assert source.read(32) != source.read(32)


class TestHmacDrbg:
    def test_deterministic_replay(self):
        assert HmacDrbg(b"seed").read(100) == HmacDrbg(b"seed").read(100)

    def test_seed_sensitivity(self):
        assert HmacDrbg(b"seed-a").read(32) != HmacDrbg(b"seed-b").read(32)

    def test_stream_advances(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.read(32) != drbg.read(32)

    def test_read_lengths(self):
        drbg = HmacDrbg(b"seed")
        for size in (0, 1, 31, 32, 33, 100):
            assert len(drbg.read(size)) == size

    def test_reseed_changes_stream(self):
        plain = HmacDrbg(b"seed")
        reseeded = HmacDrbg(b"seed")
        prefix = plain.read(16)
        assert reseeded.read(16) == prefix
        reseeded.reseed(b"fresh entropy")
        assert reseeded.read(16) != plain.read(16)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            HmacDrbg(b"seed").read(-5)

    def test_chunked_reads_differ_from_restart(self):
        """Reading twice is not the same as reading once from scratch —
        the generate call updates internal state between reads."""
        drbg = HmacDrbg(b"seed")
        two_reads = drbg.read(16) + drbg.read(16)
        one_read = HmacDrbg(b"seed").read(32)
        assert two_reads[:16] == one_read[:16]
        assert two_reads != one_read
