"""RSA: OAEP/PSS roundtrips, pyca interop, failure cases."""

from __future__ import annotations

import os

import pytest

from repro.primitives.errors import (
    InvalidPadding,
    MessageTooLong,
    ParameterError,
)
from repro.primitives.rsa import (
    RsaPrivateKey,
    generate_keypair,
    mgf1,
    oaep_decrypt,
    oaep_encrypt,
    pkcs1v15_sign,
    pkcs1v15_verify,
    pss_sign,
    pss_verify,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(1024)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        public, private = keypair
        assert public.n.bit_length() == 1024
        assert private.n == public.n

    def test_public_exponent(self, keypair):
        public, _ = keypair
        assert public.e == 65537

    def test_private_key_consistency(self, keypair):
        _, private = keypair
        assert private.p * private.q == private.n
        assert (private.e * private.d) % ((private.p - 1) * (private.q - 1)) == 1

    @pytest.mark.parametrize("bits", [100, 511])
    def test_too_small_rejected(self, bits):
        with pytest.raises(ParameterError):
            generate_keypair(bits)

    def test_odd_size_rejected(self):
        with pytest.raises(ParameterError):
            generate_keypair(1025)


class TestOaep:
    def test_roundtrip(self, keypair):
        public, private = keypair
        ciphertext = oaep_encrypt(public, b"top secret", os.urandom)
        assert oaep_decrypt(private, ciphertext) == b"top secret"

    def test_empty_message(self, keypair):
        public, private = keypair
        assert oaep_decrypt(private, oaep_encrypt(public, b"", os.urandom)) == b""

    def test_randomized_encryption(self, keypair):
        public, _ = keypair
        a = oaep_encrypt(public, b"m", os.urandom)
        b = oaep_encrypt(public, b"m", os.urandom)
        assert a != b

    def test_capacity_limit(self, keypair):
        public, _ = keypair
        # 1024-bit key with SHA-256: 128 - 2*32 - 2 = 62 bytes max.
        oaep_encrypt(public, bytes(62), os.urandom)
        with pytest.raises(MessageTooLong):
            oaep_encrypt(public, bytes(63), os.urandom)

    def test_tampered_ciphertext_rejected(self, keypair):
        public, private = keypair
        blob = bytearray(oaep_encrypt(public, b"secret", os.urandom))
        blob[-1] ^= 1
        with pytest.raises(InvalidPadding):
            oaep_decrypt(private, bytes(blob))

    def test_wrong_length_rejected(self, keypair):
        _, private = keypair
        with pytest.raises(InvalidPadding):
            oaep_decrypt(private, bytes(10))

    def test_pyca_decrypts_our_ciphertext(self):
        from cryptography.hazmat.primitives import hashes
        from cryptography.hazmat.primitives.asymmetric import padding, rsa

        pyca_key = rsa.generate_private_key(public_exponent=65537, key_size=1024)
        numbers = pyca_key.private_numbers()
        ours = RsaPrivateKey(
            numbers.public_numbers.n,
            numbers.public_numbers.e,
            numbers.d,
            numbers.p,
            numbers.q,
        )
        ciphertext = oaep_encrypt(ours.public_key(), b"interop", os.urandom)
        decrypted = pyca_key.decrypt(
            ciphertext,
            padding.OAEP(
                mgf=padding.MGF1(hashes.SHA256()),
                algorithm=hashes.SHA256(),
                label=None,
            ),
        )
        assert decrypted == b"interop"


class TestPss:
    def test_sign_verify(self, keypair):
        public, private = keypair
        signature = pss_sign(private, b"document", os.urandom)
        assert pss_verify(public, b"document", signature)

    def test_wrong_message_fails(self, keypair):
        public, private = keypair
        signature = pss_sign(private, b"document", os.urandom)
        assert not pss_verify(public, b"other", signature)

    def test_tampered_signature_fails(self, keypair):
        public, private = keypair
        signature = bytearray(pss_sign(private, b"document", os.urandom))
        signature[0] ^= 1
        assert not pss_verify(public, b"document", bytes(signature))

    def test_wrong_length_fails(self, keypair):
        public, _ = keypair
        assert not pss_verify(public, b"document", bytes(10))

    def test_signatures_are_randomized(self, keypair):
        _, private = keypair
        a = pss_sign(private, b"m", os.urandom)
        b = pss_sign(private, b"m", os.urandom)
        assert a != b

    def test_pyca_verifies_our_signature(self):
        from cryptography.hazmat.primitives import hashes
        from cryptography.hazmat.primitives.asymmetric import padding, rsa

        pyca_key = rsa.generate_private_key(public_exponent=65537, key_size=1024)
        numbers = pyca_key.private_numbers()
        ours = RsaPrivateKey(
            numbers.public_numbers.n,
            numbers.public_numbers.e,
            numbers.d,
            numbers.p,
            numbers.q,
        )
        signature = pss_sign(ours, b"interop", os.urandom)
        pyca_key.public_key().verify(
            signature,
            b"interop",
            padding.PSS(mgf=padding.MGF1(hashes.SHA256()), salt_length=32),
            hashes.SHA256(),
        )  # raises on failure


class TestPkcs1v15:
    def test_sign_verify(self, keypair):
        public, private = keypair
        signature = pkcs1v15_sign(private, b"legacy document")
        assert pkcs1v15_verify(public, b"legacy document", signature)

    def test_deterministic(self, keypair):
        _, private = keypair
        assert pkcs1v15_sign(private, b"m") == pkcs1v15_sign(private, b"m")

    def test_wrong_message_fails(self, keypair):
        public, private = keypair
        signature = pkcs1v15_sign(private, b"m")
        assert not pkcs1v15_verify(public, b"other", signature)


class TestMgf1:
    def test_length(self):
        assert len(mgf1(b"seed", 100)) == 100

    def test_deterministic(self):
        assert mgf1(b"seed", 32) == mgf1(b"seed", 32)

    def test_prefix_property(self):
        assert mgf1(b"seed", 64)[:32] == mgf1(b"seed", 32)
