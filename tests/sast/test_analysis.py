"""The analyzer: every finding kind, the paper's Figure 1, and the
clean bill for generated code."""

from __future__ import annotations

import pytest

from repro.sast import CrySLAnalyzer, FindingKind

PRELUDE = (
    "from repro.jca import Cipher, GCMParameterSpec, KeyGenerator, "
    "KeyPairGenerator, MessageDigest, PBEKeySpec, SecretKeyFactory, "
    "SecretKeySpec, SecureRandom, Signature\n"
)


def analyze(analyzer, body):
    return analyzer.analyze_source(PRELUDE + body, "snippet.py")


class TestTypestate:
    def test_missing_init_flagged(self, analyzer):
        result = analyze(
            analyzer,
            "def f():\n"
            "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
            "    out = c.do_final(b'data')\n",
        )
        kinds = {f.kind for f in result.findings}
        assert FindingKind.TYPESTATE in kinds

    def test_unknown_method_flagged(self, analyzer):
        result = analyze(
            analyzer,
            "def f():\n"
            "    md = MessageDigest.get_instance('SHA-256')\n"
            "    md.reset_hard()\n",
        )
        assert result.by_kind(FindingKind.TYPESTATE)

    def test_incomplete_operation(self, analyzer):
        """KeyGenerator initialised but never used to generate a key."""
        result = analyze(
            analyzer,
            "def f():\n"
            "    g = KeyGenerator.get_instance('AES')\n"
            "    g.init(128)\n",
        )
        (finding,) = result.by_kind(FindingKind.INCOMPLETE_OPERATION)
        assert "gk" in finding.message

    def test_parameter_objects_tolerated_mid_protocol(self, analyzer):
        result = analyze(
            analyzer,
            "def f(cipher: Cipher):\n"
            "    out = cipher.do_final(b'data')\n",
        )
        assert result.is_secure


class TestConstraints:
    def test_low_iteration_count(self, analyzer):
        result = analyze(
            analyzer,
            "def f(pwd, salt):\n"
            "    spec = PBEKeySpec(pwd, salt, 100, 128)\n"
            "    spec.clear_password()\n",
        )
        (finding,) = result.by_kind(FindingKind.CONSTRAINT)
        assert "iteration_count" in finding.message

    def test_short_salt(self, analyzer):
        result = analyze(
            analyzer,
            "def f(pwd):\n"
            "    salt = bytearray(8)\n"
            "    r = SecureRandom.get_instance('HMACDRBG')\n"
            "    r.next_bytes(salt)\n"
            "    spec = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec.clear_password()\n",
        )
        assert any(
            "length[salt]" in f.message
            for f in result.by_kind(FindingKind.CONSTRAINT)
        )

    def test_weak_digest_algorithm(self, analyzer):
        result = analyze(
            analyzer,
            "def f():\n"
            "    md = MessageDigest.get_instance('MD5')\n"
            "    digest = md.digest(b'data')\n",
        )
        assert result.by_kind(FindingKind.CONSTRAINT)

    def test_weak_rsa_modulus(self, analyzer):
        result = analyze(
            analyzer,
            "def f():\n"
            "    g = KeyPairGenerator.get_instance('RSA')\n"
            "    g.initialize(1024)\n"
            "    pair = g.generate_key_pair()\n",
        )
        assert result.by_kind(FindingKind.CONSTRAINT)

    def test_ecb_mode_flagged(self, analyzer):
        result = analyze(
            analyzer,
            "def f(key: SecretKey):\n"
            "    c = Cipher.get_instance('AES/ECB/PKCS5Padding')\n"
            "    c.init(1, key)\n"
            "    out = c.do_final(b'data')\n",
        )
        assert result.by_kind(FindingKind.CONSTRAINT)

    def test_unknowns_do_not_fire(self, analyzer):
        """Constraints over values the analysis cannot see stay silent
        (three-valued semantics)."""
        result = analyze(
            analyzer,
            "def f(pwd, salt, iterations):\n"
            "    spec = PBEKeySpec(pwd, salt, iterations, 128)\n"
            "    spec.clear_password()\n",
        )
        assert not result.by_kind(FindingKind.CONSTRAINT)


class TestRequiredPredicates:
    def test_constant_salt_flagged(self, analyzer):
        result = analyze(
            analyzer,
            "def f(pwd):\n"
            "    salt = b'0123456789abcdef'\n"
            "    spec = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec.clear_password()\n",
        )
        assert any(
            "randomized" in f.message
            for f in result.by_kind(FindingKind.REQUIRED_PREDICATE)
        )

    def test_zero_buffer_salt_flagged(self, analyzer):
        result = analyze(
            analyzer,
            "def f(pwd):\n"
            "    salt = bytearray(32)\n"  # allocated but never randomized
            "    spec = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec.clear_password()\n",
        )
        assert result.by_kind(FindingKind.REQUIRED_PREDICATE)

    def test_randomized_salt_clean(self, analyzer):
        result = analyze(
            analyzer,
            "def f(pwd):\n"
            "    salt = bytearray(32)\n"
            "    r = SecureRandom.get_instance('HMACDRBG')\n"
            "    r.next_bytes(salt)\n"
            "    spec = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec.clear_password()\n",
        )
        assert result.is_secure

    def test_predicate_invalidated_by_clear_password(self, analyzer):
        """Using the spec *after* clear_password violates specced_key —
        the NEGATES semantics of Figure 2."""
        result = analyze(
            analyzer,
            "def f(pwd):\n"
            "    salt = bytearray(32)\n"
            "    r = SecureRandom.get_instance('HMACDRBG')\n"
            "    r.next_bytes(salt)\n"
            "    spec = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec.clear_password()\n"
            "    skf = SecretKeyFactory.get_instance('PBKDF2WithHmacSHA256')\n"
            "    key = skf.generate_secret(spec)\n",
        )
        assert any(
            "specced_key" in f.message
            for f in result.by_kind(FindingKind.REQUIRED_PREDICATE)
        )

    def test_tainted_producer_does_not_grant(self, analyzer):
        """A PBEKeySpec with a violated constraint must not grant
        specced_key downstream."""
        result = analyze(
            analyzer,
            "def f(pwd):\n"
            "    salt = bytearray(32)\n"
            "    r = SecureRandom.get_instance('HMACDRBG')\n"
            "    r.next_bytes(salt)\n"
            "    spec = PBEKeySpec(pwd, salt, 5, 128)\n"  # weak iterations
            "    spec.clear_password()\n"
            "    skf = SecretKeyFactory.get_instance('PBKDF2WithHmacSHA256')\n"
            "    key = skf.generate_secret(spec)\n",
        )
        messages = " ".join(f.message for f in result.findings)
        assert "iteration_count" in messages
        assert "specced_key" in messages

    def test_unknown_provenance_waived(self, analyzer):
        result = analyze(
            analyzer,
            "def f(pwd, stored):\n"
            "    salt = stored[:32]\n"
            "    spec = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec.clear_password()\n",
        )
        assert not result.by_kind(FindingKind.REQUIRED_PREDICATE)


class TestFigure1:
    """The paper's motivating example: all three misuses detected."""

    FIGURE_1 = (
        "def generate_key(pwd):\n"
        "    salt = b'\\x0f\\xf4\\x5e\\x00\\x0c\\x03\\xbf\\x49\\xff\\xac\\xdd'\n"
        "    spec = PBEKeySpec(pwd, salt, 100000, 256)\n"
        "    skf = SecretKeyFactory.get_instance('PBKDF2WithHmacSHA256')\n"
        "    key = skf.generate_secret(spec)\n"
        "    key_material = key.get_encoded()\n"
        "    cipher_key = SecretKeySpec(key_material, 'AES')\n"
        "    return cipher_key\n"
    )

    @pytest.fixture(scope="class")
    def result(self, analyzer):
        return analyze(analyzer, self.FIGURE_1)

    def test_is_insecure(self, result):
        assert not result.is_secure

    def test_constant_salt_detected(self, result):
        assert any(
            "randomized" in f.message or "length[salt]" in f.message
            for f in result.findings
        )

    def test_missing_clear_password_detected(self, result):
        incomplete = result.by_kind(FindingKind.INCOMPLETE_OPERATION)
        assert any("cP" in f.message for f in incomplete)

    def test_misuse_cascade_reaches_downstream(self, result):
        assert any(
            "specced_key" in f.message
            for f in result.by_kind(FindingKind.REQUIRED_PREDICATE)
        )


class TestForbiddenMethods:
    def test_forbidden_signature_detected(self, tmp_path):
        """A custom rule with a FORBIDDEN section fires on exact
        signature matches."""
        from repro.crysl import RuleSet, parse_rule
        from repro.crysl.typecheck import check_rule

        rule = check_rule(
            parse_rule(
                "SPEC repro.jca.MessageDigest\n"
                "OBJECTS\n    str algorithm;\n    bytes input_data;\n    bytes digest;\n"
                "EVENTS\n    g1: this = get_instance(algorithm);\n"
                "    d1: digest = digest(input_data);\n"
                "ORDER\n    g1, d1\n"
                "FORBIDDEN\n    reset() => d1;\n"
            )
        )
        analyzer = CrySLAnalyzer(RuleSet([rule]))
        result = analyzer.analyze_source(
            "from repro.jca import MessageDigest\n"
            "def f():\n"
            "    md = MessageDigest.get_instance('SHA-256')\n"
            "    md.reset()\n"
            "    digest = md.digest(b'x')\n"
        )
        forbidden = result.by_kind(FindingKind.FORBIDDEN_METHOD)
        assert forbidden
        assert "d1" in forbidden[0].message


class TestGeneratedCodeIsClean:
    @pytest.mark.parametrize("number", range(1, 12))
    def test_use_case_clean(self, analyzer, number):
        from repro.usecases import generate_use_case

        module = generate_use_case(number)
        result = analyzer.analyze_source(module.source, f"uc{number}")
        assert result.is_secure, result.render()

    def test_old_gen_output_clean(self, analyzer):
        from repro.oldgen import OldGenerator

        old = OldGenerator()
        for slug in old.supported_slugs():
            result = analyzer.analyze_source(old.generate(slug).source, slug)
            assert result.is_secure, f"{slug}: {result.render()}"


class TestReportRendering:
    def test_clean_render(self, analyzer):
        result = analyze(analyzer, "def f():\n    pass\n")
        assert "no misuses" in result.render()

    def test_finding_render_includes_context(self, analyzer):
        result = analyze(
            analyzer,
            "def f():\n"
            "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
            "    out = c.do_final(b'x')\n",
        )
        rendered = result.render()
        assert "repro.jca.Cipher" in rendered
        assert "line" in rendered
