"""Call-graph SCC condensation, ordering and invalidation cones.

These exercise the Tarjan edge cases the incremental layer leans on:
self-recursion, mutually recursive pairs, cross-module cycles — and the
two derived views, callees-first ``order()`` and ``invalidation_cone``.
"""

from __future__ import annotations

import pytest

from repro.sast.callgraph import CallGraph, FunctionRef
from repro.sast.ir import FunctionIR


def graph_of(edges: dict[str, list[str]]) -> CallGraph:
    """A CallGraph from ``"module:qualname" -> callees`` edge specs."""
    graph = CallGraph()

    def ref(spec: str) -> FunctionRef:
        module, _, qualname = spec.partition(":")
        return FunctionRef(module, qualname)

    nodes = set(edges)
    for callees in edges.values():
        nodes.update(callees)
    for spec in nodes:
        r = ref(spec)
        graph.functions[r] = FunctionIR(
            name=r.qualname, qualname=r.qualname, module=r.module, line=1
        )
        graph.edges.setdefault(r, set())
        graph.reverse_edges.setdefault(r, set())
    for caller, callees in edges.items():
        for callee in callees:
            graph.edges[ref(caller)].add(ref(callee))
            graph.reverse_edges[ref(callee)].add(ref(caller))
    return graph


def names(refs) -> list[str]:
    return [str(r) for r in refs]


class TestCondensation:
    def test_self_recursive_function_is_its_own_component(self):
        graph = graph_of({"m:f": ["m:f", "m:g"], "m:g": []})
        components = graph.condensation()
        assert [names(c) for c in components] == [["m:g"], ["m:f"]]

    def test_mutually_recursive_pair_condenses_to_one_component(self):
        graph = graph_of({"m:even": ["m:odd"], "m:odd": ["m:even"]})
        (component,) = graph.condensation()
        assert names(component) == ["m:even", "m:odd"]

    def test_cross_module_cycle_is_one_component(self):
        graph = graph_of(
            {
                "a:ping": ["b:pong"],
                "b:pong": ["a:ping"],
                "c:outside": ["a:ping"],
            }
        )
        components = graph.condensation()
        assert [names(c) for c in components] == [
            ["a:ping", "b:pong"],  # the cycle, callees-first
            ["c:outside"],
        ]

    def test_members_within_a_component_come_back_name_sorted(self):
        graph = graph_of(
            {"m:zulu": ["m:alpha"], "m:alpha": ["m:mike"], "m:mike": ["m:zulu"]}
        )
        (component,) = graph.condensation()
        assert names(component) == ["m:alpha", "m:mike", "m:zulu"]

    def test_condensation_is_deterministic(self):
        edges = {
            "m:a": ["m:b", "m:c"],
            "m:b": ["m:d"],
            "m:c": ["m:d"],
            "m:d": [],
        }
        first = [names(c) for c in graph_of(edges).condensation()]
        second = [names(c) for c in graph_of(edges).condensation()]
        assert first == second


class TestOrder:
    def test_callees_appear_before_callers(self):
        graph = graph_of(
            {
                "m:top": ["m:mid1", "m:mid2"],
                "m:mid1": ["m:leaf"],
                "m:mid2": ["m:leaf"],
                "m:leaf": [],
            }
        )
        order = names(graph.order())
        assert order.index("m:leaf") < order.index("m:mid1")
        assert order.index("m:leaf") < order.index("m:mid2")
        assert order.index("m:mid1") < order.index("m:top")
        assert order.index("m:mid2") < order.index("m:top")

    def test_order_covers_every_function_once(self):
        graph = graph_of(
            {"m:a": ["m:b"], "m:b": ["m:a"], "m:c": ["m:a"], "m:d": []}
        )
        order = names(graph.order())
        assert sorted(order) == ["m:a", "m:b", "m:c", "m:d"]

    def test_cycle_members_are_adjacent_after_their_callees(self):
        graph = graph_of(
            {"m:x": ["m:y", "m:leaf"], "m:y": ["m:x"], "m:leaf": []}
        )
        assert names(graph.order()) == ["m:leaf", "m:x", "m:y"]


class TestInvalidationCone:
    def test_cone_is_changed_plus_transitive_callers(self):
        graph = graph_of(
            {
                "m:main": ["m:helper"],
                "m:helper": ["m:leaf"],
                "m:leaf": [],
                "m:unrelated": [],
            }
        )
        cone = graph.invalidation_cone([FunctionRef("m", "leaf")])
        assert sorted(names(cone)) == ["m:helper", "m:leaf", "m:main"]

    def test_change_to_a_root_only_touches_the_root(self):
        graph = graph_of({"m:main": ["m:helper"], "m:helper": []})
        cone = graph.invalidation_cone([FunctionRef("m", "main")])
        assert names(cone) == ["m:main"]

    def test_cycle_member_pulls_in_the_whole_cycle(self):
        graph = graph_of(
            {
                "a:ping": ["b:pong"],
                "b:pong": ["a:ping"],
                "c:caller": ["a:ping"],
                "c:bystander": [],
            }
        )
        cone = graph.invalidation_cone([FunctionRef("b", "pong")])
        assert sorted(names(cone)) == ["a:ping", "b:pong", "c:caller"]

    def test_unknown_refs_are_ignored(self):
        graph = graph_of({"m:a": []})
        assert graph.invalidation_cone([FunctionRef("m", "ghost")]) == set()

    def test_cone_over_real_cross_module_sources(self, analyzer):
        """The end-to-end shape: lift real sources, change the helper
        module, and check the cone stays inside helper + its callers."""
        import ast as pyast

        from repro.sast.ir import lift_module

        sources = {
            "helpers.py": (
                "def make_iv():\n"
                "    return b'0' * 16\n"
            ),
            "app.py": (
                "from helpers import make_iv\n"
                "def run():\n"
                "    iv = make_iv()\n"
                "    return iv\n"
            ),
            "other.py": (
                "def standalone():\n"
                "    return 1\n"
            ),
        }
        functions = []
        for key, text in sources.items():
            functions.extend(
                lift_module(
                    pyast.parse(text, filename=key),
                    analyzer.tracked_classes,
                    analyzer.result_classes,
                    module_name=key,
                    file=key,
                )
            )
        graph = CallGraph.build(functions)
        changed = [r for r in graph.functions if r.module == "helpers.py"]
        cone = graph.invalidation_cone(changed)
        assert FunctionRef("app.py", "run") in cone
        assert FunctionRef("other.py", "standalone") not in cone
