"""Analyzer edge cases: interleaved NEGATES across objects, aliasing
under reassignment, and FORBIDDEN methods with aggregate alternatives."""

from __future__ import annotations

from repro.crysl import RuleSet, parse_rule
from repro.crysl.typecheck import check_rule
from repro.sast import CrySLAnalyzer, FindingKind

PRELUDE = (
    "from repro.jca import Cipher, MessageDigest, PBEKeySpec, "
    "SecretKeyFactory, SecureRandom\n"
)


def analyze(analyzer, body):
    return analyzer.analyze_source(PRELUDE + body, "snippet.py")


class TestInterleavedNegates:
    """NEGATES is per object: clearing one PBEKeySpec must not revoke
    (or preserve) the predicate of the *other* one."""

    def test_negation_is_object_local(self, analyzer):
        result = analyze(
            analyzer,
            "def f(pwd):\n"
            "    salt = bytearray(32)\n"
            "    r = SecureRandom.get_instance('HMACDRBG')\n"
            "    r.next_bytes(salt)\n"
            "    spec_a = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec_b = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec_a.clear_password()\n"  # negates specced_key[spec_a] only
            "    skf = SecretKeyFactory.get_instance('PBKDF2WithHmacSHA256')\n"
            "    key = skf.generate_secret(spec_b)\n"  # spec_b still specced
            "    spec_b.clear_password()\n",
        )
        assert not result.by_kind(FindingKind.REQUIRED_PREDICATE), (
            result.render()
        )

    def test_interleaved_clear_then_use_still_flagged(self, analyzer):
        """The negated object of the pair is still caught when uses of
        both objects interleave."""
        result = analyze(
            analyzer,
            "def f(pwd):\n"
            "    salt = bytearray(32)\n"
            "    r = SecureRandom.get_instance('HMACDRBG')\n"
            "    r.next_bytes(salt)\n"
            "    spec_a = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec_b = PBEKeySpec(pwd, salt, 10000, 128)\n"
            "    spec_a.clear_password()\n"
            "    skf = SecretKeyFactory.get_instance('PBKDF2WithHmacSHA256')\n"
            "    key_b = skf.generate_secret(spec_b)\n"  # fine
            "    skf2 = SecretKeyFactory.get_instance('PBKDF2WithHmacSHA256')\n"
            "    key_a = skf2.generate_secret(spec_a)\n"  # use after negate
            "    spec_b.clear_password()\n",
        )
        offending = [
            f
            for f in result.by_kind(FindingKind.REQUIRED_PREDICATE)
            if "specced_key" in f.message
        ]
        assert len(offending) == 1
        # Attributed to the consuming call, naming the negated argument.
        assert offending[0].variable == "skf2"
        assert "spec_a" in offending[0].message


class TestAliasThenReassign:
    """Aliases bind to the *object*; rebinding one name must neither
    lose the trace nor double-report it."""

    def test_alias_survives_original_rebinding(self, analyzer):
        result = analyze(
            analyzer,
            "def f(key):\n"
            "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
            "    alias = c\n"
            "    c = 'something else entirely'\n"
            "    alias.init(1, key)\n"
            "    out = alias.do_final(b'data')\n",
        )
        assert result.is_secure, result.render()

    def test_alias_and_original_are_one_object(self, analyzer):
        """Events through either name advance the same typestate."""
        result = analyze(
            analyzer,
            "def f(key):\n"
            "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
            "    alias = c\n"
            "    c.init(1, key)\n"
            "    out = alias.do_final(b'data')\n",
        )
        assert result.is_secure, result.render()
        assert result.tracked_objects == 1

    def test_rebound_name_starts_a_fresh_object(self, analyzer):
        """After ``c`` is rebound to a *new* Cipher, the old object
        (still reachable via the alias) and the new one are tracked
        separately — the incomplete old object is reported, the
        complete new one is not."""
        result = analyze(
            analyzer,
            "def f(key):\n"
            "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
            "    alias = c\n"
            "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
            "    c.init(1, key)\n"
            "    out = c.do_final(b'data')\n",
        )
        incomplete = result.by_kind(FindingKind.INCOMPLETE_OPERATION)
        assert len(incomplete) == 1
        assert incomplete[0].line == 3  # the first get_instance


class TestForbiddenAggregateAlternative:
    """A FORBIDDEN method whose suggested alternative is an aggregate
    ORDER label still fires, and the fix hint names the aggregate."""

    RULE = (
        "SPEC repro.jca.Cipher\n"
        "OBJECTS\n"
        "    str transformation;\n"
        "    int op_mode;\n"
        "    repro.jca.Key key;\n"
        "    bytes input_data;\n"
        "    bytes output_data;\n"
        "EVENTS\n"
        "    g1: this = get_instance(transformation);\n"
        "    i1: init(op_mode, key);\n"
        "    f1: output_data = do_final(input_data);\n"
        "    f2: output_data = do_final();\n"
        "    Finals := f1 | f2;\n"
        "ORDER\n"
        "    g1, i1, Finals\n"
        "FORBIDDEN\n"
        "    update(bytes) => Finals;\n"
    )

    def _analyzer(self):
        return CrySLAnalyzer(RuleSet([check_rule(parse_rule(self.RULE))]))

    def test_forbidden_call_detected(self):
        result = self._analyzer().analyze_source(
            "from repro.jca import Cipher\n"
            "def f(key):\n"
            "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
            "    c.init(1, key)\n"
            "    c.update(b'data')\n"
            "    out = c.do_final()\n"
        )
        (finding,) = result.by_kind(FindingKind.FORBIDDEN_METHOD)
        assert "update" in finding.message
        assert "Finals" in finding.message  # aggregate named as the fix

    def test_aggregate_members_stay_allowed(self):
        """The aggregate's member events themselves are not forbidden."""
        result = self._analyzer().analyze_source(
            "from repro.jca import Cipher\n"
            "def f(key):\n"
            "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
            "    c.init(1, key)\n"
            "    out = c.do_final(b'data')\n"
        )
        assert not result.by_kind(FindingKind.FORBIDDEN_METHOD)
        assert result.is_secure, result.render()
