"""Stable finding fingerprints and the baseline/diff gate."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.sast.fingerprint import (
    Baseline,
    BaselineError,
    baseline_from_results,
    compute_fingerprints,
    diff_against_baseline,
    fingerprint_identity,
    normalize_file,
)
from repro.sast.report import AnalysisResult, Finding, FindingKind


def finding(**overrides) -> Finding:
    defaults = dict(
        kind=FindingKind.CONSTRAINT,
        message="key too short",
        line=10,
        variable="key",
        rule="SecretKeySpec",
        function="make_key",
        file="src/app.py",
        column=5,
    )
    defaults.update(overrides)
    return Finding(**defaults)


class TestNormalizeFile:
    def test_module_keys_pass_through(self):
        assert normalize_file("<module>") == "<module>"

    def test_relative_paths_keep_posix_form(self, tmp_path):
        assert normalize_file("src/app.py", root=tmp_path) == "src/app.py"

    def test_paths_under_root_become_relative(self, tmp_path):
        target = tmp_path / "pkg" / "mod.py"
        assert normalize_file(str(target), root=tmp_path) == "pkg/mod.py"

    def test_absolute_paths_outside_root_reduce_to_basename(self, tmp_path):
        other = tmp_path / "elsewhere" / "deep" / "mod.py"
        root = tmp_path / "project"
        root.mkdir()
        assert normalize_file(str(other), root=root) == "mod.py"


class TestFingerprints:
    def test_stable_across_line_shifts(self):
        a = finding(line=10)
        b = finding(line=99, column=1)
        assert fingerprint_identity(a) == fingerprint_identity(b)

    def test_sensitive_to_rule_kind_and_message(self):
        base = finding()
        assert fingerprint_identity(base) != fingerprint_identity(
            finding(rule="Cipher")
        )
        assert fingerprint_identity(base) != fingerprint_identity(
            finding(kind=FindingKind.TYPESTATE)
        )
        assert fingerprint_identity(base) != fingerprint_identity(
            finding(message="other")
        )

    def test_duplicates_get_distinct_but_stable_fingerprints(self):
        pair = [finding(line=10), finding(line=20)]
        first = compute_fingerprints(pair)
        assert len(set(first)) == 2
        assert compute_fingerprints(pair) == first

    def test_absolute_path_never_reaches_the_fingerprint(self, tmp_path):
        # the same finding reported from two different checkouts agrees
        a = finding(file=str(tmp_path / "host-a" / "app.py"))
        b = finding(file=str(tmp_path / "host-b" / "app.py"))
        assert fingerprint_identity(
            a, root=tmp_path / "nowhere"
        ) == fingerprint_identity(b, root=tmp_path / "nowhere")


def results_of(*findings: Finding) -> dict[str, AnalysisResult]:
    return {"m": AnalysisResult(findings=list(findings))}


class TestBaseline:
    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline(fingerprints={"b", "a"})
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.fingerprints == {"a", "b"}
        # the file itself is deterministic (sorted)
        payload = json.loads(path.read_text())
        assert payload["fingerprints"] == ["a", "b"]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)
        path.write_text(json.dumps({"schema_version": 999, "fingerprints": []}))
        with pytest.raises(BaselineError):
            Baseline.load(path)
        with pytest.raises(BaselineError):
            Baseline.load(tmp_path / "missing.json")

    def test_diff_partitions_new_and_baselined(self):
        old = finding(message="known issue")
        new = finding(message="fresh issue")
        baseline = baseline_from_results(results_of(old))
        diff = diff_against_baseline(results_of(old, new), baseline)
        assert [f.message for f in diff.baselined] == ["known issue"]
        assert [f.message for f in diff.new] == ["fresh issue"]
        assert not diff.clean

    def test_diff_is_clean_when_all_findings_are_baselined(self):
        old = finding()
        baseline = baseline_from_results(results_of(old))
        diff = diff_against_baseline(results_of(old), baseline)
        assert diff.clean and diff.absent == 0

    def test_fixed_findings_show_as_absent(self):
        old = finding()
        baseline = baseline_from_results(results_of(old))
        diff = diff_against_baseline(results_of(), baseline)
        assert diff.clean and diff.absent == 1

    def test_suppressed_findings_are_out_of_scope(self):
        suppressed = dataclasses.replace(finding(), suppressed=True)
        baseline = baseline_from_results(results_of(suppressed))
        assert len(baseline) == 0
        diff = diff_against_baseline(results_of(suppressed), Baseline())
        assert diff.clean

    def test_line_shift_keeps_a_finding_baselined(self):
        baseline = baseline_from_results(results_of(finding(line=10)))
        diff = diff_against_baseline(
            results_of(finding(line=42, column=3)), baseline
        )
        assert diff.clean
