"""IR lifting: traces, aliases, facts, factory products."""

from __future__ import annotations

import ast as pyast

from repro.sast.ir import lift_module

TRACKED = {"Cipher", "SecretKeyFactory", "SecretKey", "KeyGenerator"}
RESULT_CLASSES = {("SecretKeyFactory", "generate_secret", 1): "SecretKey"}


def lift(source):
    return lift_module(pyast.parse(source), TRACKED, RESULT_CLASSES)


def test_constructor_creates_trace():
    (ir,) = lift("def f():\n    c = Cipher('AES/GCM/NoPadding')\n")
    assert "c" in ir.traces
    assert ir.traces["c"].class_name == "Cipher"
    assert ir.traces["c"].creation.method == "Cipher"


def test_factory_creates_trace():
    (ir,) = lift("def f():\n    c = Cipher.get_instance('AES/GCM/NoPadding')\n")
    assert ir.traces["c"].creation.method == "get_instance"


def test_method_calls_recorded_in_order():
    (ir,) = lift(
        "def f(key):\n"
        "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
        "    c.init(1, key)\n"
        "    out = c.do_final(b'data')\n"
    )
    trace = ir.traces["c"]
    assert [call.method for call in trace.calls] == ["init", "do_final"]
    assert trace.calls[1].result_var == "out"


def test_alias_following():
    (ir,) = lift(
        "def f():\n"
        "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
        "    alias = c\n"
        "    alias.init(1, None)\n"
    )
    assert [call.method for call in ir.traces["c"].calls] == ["init"]


def test_annotated_parameter_becomes_trace():
    (ir,) = lift("def f(cipher: Cipher):\n    cipher.init(1, None)\n")
    assert ir.traces["cipher"].from_parameter


def test_factory_product_tracked():
    (ir,) = lift(
        "def f(spec):\n"
        "    skf = SecretKeyFactory.get_instance('PBKDF2WithHmacSHA256')\n"
        "    key = skf.generate_secret(spec)\n"
        "    material = key.get_encoded()\n"
    )
    assert ir.traces["key"].class_name == "SecretKey"
    assert [c.method for c in ir.traces["key"].calls] == ["get_encoded"]


def test_literal_facts():
    (ir,) = lift(
        "def f():\n"
        "    iterations = 1000\n"
        "    name = 'AES'\n"
        "    salt = bytearray(32)\n"
        "    raw = b'xyz'\n"
    )
    assert ir.constants["iterations"] == 1000
    assert ir.constants["name"] == "AES"
    assert ir.lengths["salt"] == 32
    assert ir.lengths["raw"] == 3


def test_arg_facts_capture_values():
    (ir,) = lift(
        "def f():\n"
        "    size = 128\n"
        "    g = KeyGenerator.get_instance('AES')\n"
        "    g.init(size)\n"
    )
    (init,) = ir.traces["g"].calls
    assert init.args[0].var == "size"
    assert init.args[0].value == 128


def test_symbolic_constant_args():
    (ir,) = lift(
        "def f(key):\n"
        "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
        "    c.init(Cipher.ENCRYPT_MODE, key)\n"
    )
    (init,) = ir.traces["c"].calls
    assert init.args[0].value == 1
    assert init.args[0].is_literal


def test_sequence_numbers_are_monotonic():
    (ir,) = lift(
        "def f(key):\n"
        "    a = Cipher.get_instance('AES/GCM/NoPadding')\n"
        "    b = Cipher.get_instance('AES/GCM/NoPadding')\n"
        "    a.init(1, key)\n"
        "    b.init(1, key)\n"
    )
    sequence = [
        ir.traces["a"].creation.seq,
        ir.traces["b"].creation.seq,
        ir.traces["a"].calls[0].seq,
        ir.traces["b"].calls[0].seq,
    ]
    assert sequence == sorted(sequence)


def test_methods_inside_classes_lifted():
    irs = lift(
        "class K:\n"
        "    def m(self):\n"
        "        c = Cipher.get_instance('AES/GCM/NoPadding')\n"
    )
    assert [ir.name for ir in irs] == ["m"]


def test_nested_control_flow_visited():
    (ir,) = lift(
        "def f(key, flag):\n"
        "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
        "    if flag:\n"
        "        c.init(1, key)\n"
    )
    assert [call.method for call in ir.traces["c"].calls] == ["init"]
