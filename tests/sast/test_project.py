"""Whole-project interprocedural analysis: cross-file object flow,
summaries, determinism of the parallel engine, and the verify gate."""

from __future__ import annotations

import pytest

from repro.codegen import CrySLBasedCodeGenerator, VerificationError
from repro.sast import FindingKind, ProjectAnalyzer
from repro.usecases import USE_CASES

WRAPPER = """\
from repro.jca import Cipher


class CipherFactory:
    def make(self, transformation, key):
        c = Cipher.get_instance(transformation)
        c.init(1, key)
        return c

    def finish(self, cipher: Cipher, data):
        return cipher.do_final(data)
"""

USAGE = """\
from wrapper import CipherFactory


class Encryptor:
    def template_usage(self, key, data):
        factory = CipherFactory()
        cipher = factory.make('AES/GCM/NoPadding', key)
        return factory.finish(cipher, data)
"""


@pytest.fixture(scope="module")
def project_analyzer():
    return ProjectAnalyzer()


class TestCrossFileTracking:
    def test_wrapper_and_usage_split_across_files(self, project_analyzer):
        """A Cipher created inside a wrapper method and consumed in
        ``template_usage()`` from another module analyzes clean."""
        result = project_analyzer.analyze_sources(
            {"wrapper.py": WRAPPER, "usage.py": USAGE}
        )
        assert result.is_secure, result.render()
        assert result.tracked_objects >= 2

    def test_seeded_misuse_is_reported_across_files(self, project_analyzer):
        """Dropping the init() inside the wrapper surfaces at analysis
        time even though creation and use live in different files."""
        broken = WRAPPER.replace("        c.init(1, key)\n", "")
        result = project_analyzer.analyze_sources(
            {"wrapper.py": broken, "usage.py": USAGE}
        )
        assert not result.is_secure
        finding = result.findings[0]
        assert finding.kind in (
            FindingKind.TYPESTATE,
            FindingKind.INCOMPLETE_OPERATION,
        )
        # Every project finding carries file + line + column.
        assert finding.file in ("wrapper.py", "usage.py")
        assert finding.line > 0
        assert finding.column > 0

    def test_replay_failure_lands_at_the_call_site(self, project_analyzer):
        """Calling a helper whose summary replays an event the object's
        state rejects is reported where the call happens."""
        usage = USAGE.replace(
            "        return factory.finish(cipher, data)\n",
            "        out = factory.finish(cipher, data)\n"
            "        return factory.finish(cipher, data)\n",
        )
        result = project_analyzer.analyze_sources(
            {"wrapper.py": WRAPPER, "usage.py": usage}
        )
        typestate = [
            f for f in result.findings if f.kind is FindingKind.TYPESTATE
        ]
        assert typestate, result.render()
        assert typestate[0].file == "usage.py"
        assert "finish" in typestate[0].message

    def test_incomplete_returned_object_names_its_origin(
        self, project_analyzer
    ):
        usage = USAGE.replace(
            "        return factory.finish(cipher, data)\n", ""
        )
        result = project_analyzer.analyze_sources(
            {"wrapper.py": WRAPPER, "usage.py": usage}
        )
        incomplete = [
            f
            for f in result.findings
            if f.kind is FindingKind.INCOMPLETE_OPERATION
        ]
        assert incomplete, result.render()
        assert any("make" in f.message for f in incomplete)


class TestResultShape:
    def test_to_dict_keyed_by_module(self, project_analyzer):
        result = project_analyzer.analyze_sources(
            {"wrapper.py": WRAPPER, "usage.py": USAGE}
        )
        payload = result.to_dict()
        assert set(payload) == {"wrapper.py", "usage.py"}
        for entry in payload.values():
            assert entry["secure"] is True
            assert entry["findings"] == []

    def test_findings_dicts_carry_locations(self, project_analyzer):
        broken = WRAPPER.replace("        c.init(1, key)\n", "")
        result = project_analyzer.analyze_sources(
            {"wrapper.py": broken, "usage.py": USAGE}
        )
        dicts = [
            f
            for entry in result.to_dict().values()
            for f in entry["findings"]
        ]
        assert dicts
        for finding in dicts:
            assert finding["file"]
            assert finding["line"] > 0
            assert "column" in finding

    def test_diagnostics_counters_accumulate(self):
        analyzer = ProjectAnalyzer()
        analyzer.analyze_sources({"wrapper.py": WRAPPER, "usage.py": USAGE})
        counters = analyzer.diagnostics.counters
        assert counters["analysis.modules"] == 2
        assert counters["analysis.functions"] >= 3
        assert counters["analysis.call_edges"] >= 2
        assert counters["analysis.summaries"] >= 3


class TestDeterminism:
    SOURCES = {
        "wrapper.py": WRAPPER,
        "usage.py": USAGE.replace(
            "        return factory.finish(cipher, data)\n", ""
        ),
        "solo.py": (
            "from repro.jca import MessageDigest\n"
            "def digest(data):\n"
            "    md = MessageDigest.get_instance('MD5')\n"
            "    return md.digest(data)\n"
        ),
    }

    def test_parallel_matches_serial_byte_for_byte(self):
        serial = ProjectAnalyzer().analyze_sources(self.SOURCES, jobs=1)
        parallel = ProjectAnalyzer().analyze_sources(self.SOURCES, jobs=2)
        assert serial.render() == parallel.render()
        assert serial.to_dict() == parallel.to_dict()

    def test_findings_sorted_within_module(self):
        result = ProjectAnalyzer().analyze_sources(self.SOURCES)
        for module_result in result.modules.values():
            lines = [(f.line, f.column) for f in module_result.findings]
            assert lines == sorted(lines)


class TestGenerateVerifyGate:
    @pytest.mark.parametrize("number", range(1, 12))
    def test_all_use_cases_pass_the_gate(self, number):
        generator = CrySLBasedCodeGenerator(verify=True)
        module = generator.generate_from_file(
            USE_CASES[number - 1].template_path()
        )
        assert module.source

    def test_use_cases_clean_under_project_analyzer(self, project_analyzer):
        from repro.usecases import generate_use_case

        sources = {
            f"{case.slug}.py": generate_use_case(case.number).source
            for case in USE_CASES
        }
        result = project_analyzer.analyze_sources(sources)
        assert result.is_secure, result.render()

    def test_verification_error_is_structured(self):
        """A generator whose analyzer is rigged to reject everything
        raises a VerificationError naming template and findings."""
        generator = CrySLBasedCodeGenerator(verify=True)
        case = USE_CASES[0]
        module = generator.generate_from_file(case.template_path())
        # Sanity: the real gate passed; now exercise the error type.
        error = VerificationError(
            "template.py",
            module,
            ProjectAnalyzer()
            .analyze_sources(
                {
                    "bad.py": (
                        "from repro.jca import Cipher\n"
                        "def f():\n"
                        "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
                    )
                }
            )
            .findings,
        )
        assert "template.py" in str(error)
        assert "finding" in str(error)
        assert error.findings
