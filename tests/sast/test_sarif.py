"""SARIF 2.1.0 export: structural schema validation and content.

The container has no network access, so the official OASIS schema
cannot be fetched; ``SARIF_SUBSET_SCHEMA`` below transcribes the
structural requirements of sarif-schema-2.1.0.json that apply to the
subset of SARIF this tool emits (log, run, tool, reportingDescriptor,
result, location, physicalLocation, region, artifact). Property names,
required sets, enums and integer minima match the official schema.
"""

from __future__ import annotations

import pytest

jsonschema = pytest.importorskip("jsonschema")

from repro.sast import FindingKind, ProjectAnalyzer, to_sarif
from repro.sast.sarif import SARIF_SCHEMA, SARIF_VERSION, TOOL_NAME

SARIF_SUBSET_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {"type": "array", "items": {"$ref": "#/definitions/run"}},
    },
    "definitions": {
        "run": {
            "type": "object",
            "required": ["tool"],
            "properties": {
                "tool": {"$ref": "#/definitions/tool"},
                "artifacts": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/artifact"},
                },
                "results": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/result"},
                },
            },
        },
        "tool": {
            "type": "object",
            "required": ["driver"],
            "properties": {
                "driver": {"$ref": "#/definitions/toolComponent"}
            },
        },
        "toolComponent": {
            "type": "object",
            "required": ["name"],
            "properties": {
                "name": {"type": "string"},
                "version": {"type": "string"},
                "informationUri": {"type": "string", "format": "uri"},
                "rules": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/reportingDescriptor"},
                },
            },
        },
        "reportingDescriptor": {
            "type": "object",
            "required": ["id"],
            "properties": {
                "id": {"type": "string"},
                "name": {"type": "string"},
                "shortDescription": {
                    "$ref": "#/definitions/multiformatMessageString"
                },
                "defaultConfiguration": {
                    "type": "object",
                    "properties": {
                        "level": {
                            "enum": ["none", "note", "warning", "error"]
                        }
                    },
                },
            },
        },
        "multiformatMessageString": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
        },
        "artifact": {
            "type": "object",
            "properties": {
                "location": {"$ref": "#/definitions/artifactLocation"}
            },
        },
        "artifactLocation": {
            "type": "object",
            "properties": {"uri": {"type": "string"}},
        },
        "result": {
            "type": "object",
            "required": ["message"],
            "properties": {
                "ruleId": {"type": "string"},
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {"$ref": "#/definitions/message"},
                "locations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/location"},
                },
                "partialFingerprints": {
                    "type": "object",
                    "additionalProperties": {"type": "string"},
                },
                "suppressions": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/suppression"},
                },
            },
        },
        "suppression": {
            "type": "object",
            "required": ["kind"],
            "properties": {
                "kind": {"enum": ["inSource", "external"]},
                "justification": {"type": "string"},
            },
        },
        "message": {
            "type": "object",
            "properties": {"text": {"type": "string"}},
            "anyOf": [{"required": ["text"]}, {"required": ["id"]}],
        },
        "location": {
            "type": "object",
            "properties": {
                "physicalLocation": {
                    "$ref": "#/definitions/physicalLocation"
                },
                "logicalLocations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/logicalLocation"},
                },
            },
        },
        "physicalLocation": {
            "type": "object",
            "anyOf": [
                {"required": ["artifactLocation"]},
                {"required": ["address"]},
            ],
            "properties": {
                "artifactLocation": {
                    "$ref": "#/definitions/artifactLocation"
                },
                "region": {"$ref": "#/definitions/region"},
            },
        },
        "region": {
            "type": "object",
            "properties": {
                "startLine": {"type": "integer", "minimum": 1},
                "startColumn": {"type": "integer", "minimum": 1},
                "endLine": {"type": "integer", "minimum": 1},
                "endColumn": {"type": "integer", "minimum": 1},
            },
        },
        "logicalLocation": {
            "type": "object",
            "properties": {
                "name": {"type": "string"},
                "kind": {"type": "string"},
            },
        },
    },
}

BROKEN = (
    "from repro.jca import Cipher, MessageDigest\n"
    "def f(key):\n"
    "    c = Cipher.get_instance('AES/GCM/NoPadding')\n"
    "    out = c.do_final(b'data')\n"
    "def g(data):\n"
    "    md = MessageDigest.get_instance('MD5')\n"
    "    return md.digest(data)\n"
)


@pytest.fixture(scope="module")
def sarif_log():
    result = ProjectAnalyzer().analyze_sources({"broken.py": BROKEN})
    return result, to_sarif(result)


def validate(document):
    jsonschema.validate(document, SARIF_SUBSET_SCHEMA)


class TestSchema:
    def test_findings_log_validates(self, sarif_log):
        _, log = sarif_log
        validate(log)

    def test_clean_log_validates(self):
        result = ProjectAnalyzer().analyze_sources(
            {"empty.py": "def f():\n    pass\n"}
        )
        log = to_sarif(result)
        validate(log)
        assert log["runs"][0]["results"] == []

    def test_schema_subset_rejects_bad_documents(self, sarif_log):
        """The subset schema has teeth: structural breakage fails."""
        import copy

        _, log = sarif_log
        broken = copy.deepcopy(log)
        broken["version"] = "1.0.0"
        with pytest.raises(jsonschema.ValidationError):
            validate(broken)
        broken = copy.deepcopy(log)
        del broken["runs"][0]["tool"]["driver"]["name"]
        with pytest.raises(jsonschema.ValidationError):
            validate(broken)
        broken = copy.deepcopy(log)
        broken["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "region"
        ]["startLine"] = 0
        with pytest.raises(jsonschema.ValidationError):
            validate(broken)


class TestContent:
    def test_header(self, sarif_log):
        _, log = sarif_log
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert rule_ids == {kind.value for kind in FindingKind}

    def test_every_result_has_file_line_column(self, sarif_log):
        result, log = sarif_log
        results = log["runs"][0]["results"]
        assert len(results) == len(result.findings)
        for entry in results:
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == "broken.py"
            region = location["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_results_reference_declared_rules(self, sarif_log):
        _, log = sarif_log
        run = log["runs"][0]
        declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        for entry in run["results"]:
            assert entry["ruleId"] in declared
            assert entry["message"]["text"]

    def test_artifacts_list_all_modules(self, sarif_log):
        _, log = sarif_log
        uris = [
            artifact["location"]["uri"]
            for artifact in log["runs"][0]["artifacts"]
        ]
        assert uris == ["broken.py"]

    def test_json_serialisable(self, sarif_log):
        import json

        _, log = sarif_log
        assert json.loads(json.dumps(log)) == log


class TestFingerprints:
    def test_every_result_carries_a_partial_fingerprint(self, sarif_log):
        from repro.sast.fingerprint import FINGERPRINT_SCHEME

        _, log = sarif_log
        for entry in log["runs"][0]["results"]:
            fingerprint = entry["partialFingerprints"][FINGERPRINT_SCHEME]
            assert isinstance(fingerprint, str) and len(fingerprint) == 64

    def test_fingerprints_are_stable_across_runs(self):
        first = to_sarif(
            ProjectAnalyzer().analyze_sources({"broken.py": BROKEN})
        )
        second = to_sarif(
            ProjectAnalyzer().analyze_sources({"broken.py": BROKEN})
        )
        prints = lambda log: [
            r["partialFingerprints"] for r in log["runs"][0]["results"]
        ]
        assert prints(first) == prints(second)

    def test_fingerprints_survive_line_shifts(self):
        shifted = "# a leading comment\n\n" + BROKEN
        a = to_sarif(ProjectAnalyzer().analyze_sources({"broken.py": BROKEN}))
        b = to_sarif(ProjectAnalyzer().analyze_sources({"broken.py": shifted}))
        prints = lambda log: [
            r["partialFingerprints"] for r in log["runs"][0]["results"]
        ]
        assert prints(a) == prints(b)

    def test_fingerprints_are_unique_within_a_run(self, sarif_log):
        from repro.sast.fingerprint import FINGERPRINT_SCHEME

        _, log = sarif_log
        values = [
            r["partialFingerprints"][FINGERPRINT_SCHEME]
            for r in log["runs"][0]["results"]
        ]
        assert len(values) == len(set(values))


class TestSuppressions:
    def test_suppressed_findings_carry_in_source_suppressions(self):
        marked = BROKEN.replace(
            "md = MessageDigest.get_instance('MD5')",
            "md = MessageDigest.get_instance('MD5')  # crysl: ignore",
        )
        result = ProjectAnalyzer().analyze_sources({"broken.py": marked})
        log = to_sarif(result)
        validate(log)
        suppressed = [
            r for r in log["runs"][0]["results"] if r.get("suppressions")
        ]
        active = [
            r for r in log["runs"][0]["results"] if not r.get("suppressions")
        ]
        assert suppressed and active
        for entry in suppressed:
            assert entry["suppressions"][0]["kind"] == "inSource"
