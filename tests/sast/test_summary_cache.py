"""The content-addressed per-function summary cache.

Covers the three contract layers: key computation (content-addressed,
cone-by-construction), the two-tier store itself (LRU, disk
persistence, corruption eviction, fingerprint invalidation), and the
analyzer integration (warm replays are byte-identical, edits re-analyze
exactly the caller cone).
"""

from __future__ import annotations

import pickle

import pytest

from repro.sast import ProjectAnalyzer
from repro.sast.callgraph import CallGraph, FunctionRef
from repro.sast.report import Finding, FindingKind
from repro.sast.summary_cache import (
    SUMMARY_SCHEMA_VERSION,
    CachedFunctionAnalysis,
    SummaryCache,
    compute_summary_keys,
)

HELPER = "def make_iv():\n    return b'0' * 16\n"
APP = (
    "from helpers import make_iv\n"
    "def run():\n"
    "    iv = make_iv()\n"
    "    return iv\n"
)
OTHER = "def standalone():\n    return 1\n"

SOURCES = {"helpers.py": HELPER, "app.py": APP, "other.py": OTHER}


def build_graph(analyzer, sources):
    import ast as pyast

    from repro.sast.ir import lift_module

    functions = []
    for key, text in sources.items():
        functions.extend(
            lift_module(
                pyast.parse(text, filename=key),
                analyzer.tracked_classes,
                analyzer.result_classes,
                module_name=key,
                file=key,
            )
        )
    return CallGraph.build(functions)


class TestKeyComputation:
    def test_every_function_gets_a_key(self, analyzer):
        graph = build_graph(analyzer, SOURCES)
        keys = compute_summary_keys(graph, SOURCES, "fp")
        assert set(keys) == set(graph.functions)
        assert len(set(keys.values())) == len(keys)  # all distinct

    def test_keys_are_deterministic(self, analyzer):
        graph = build_graph(analyzer, SOURCES)
        assert compute_summary_keys(graph, SOURCES, "fp") == compute_summary_keys(
            build_graph(analyzer, SOURCES), dict(SOURCES), "fp"
        )

    def test_editing_a_function_rekeys_exactly_its_caller_cone(self, analyzer):
        graph = build_graph(analyzer, SOURCES)
        before = compute_summary_keys(graph, SOURCES, "fp")
        edited = {**SOURCES, "helpers.py": "def make_iv():\n    return b'1' * 16\n"}
        after = compute_summary_keys(build_graph(analyzer, edited), edited, "fp")
        changed = {ref for ref in before if before[ref] != after[ref]}
        assert changed == graph.invalidation_cone(
            [FunctionRef("helpers.py", "make_iv")]
        )
        assert FunctionRef("other.py", "standalone") not in changed

    def test_ruleset_fingerprint_is_part_of_every_key(self, analyzer):
        graph = build_graph(analyzer, SOURCES)
        a = compute_summary_keys(graph, SOURCES, "fp-a")
        b = compute_summary_keys(graph, SOURCES, "fp-b")
        assert all(a[ref] != b[ref] for ref in a)

    def test_schema_version_is_part_of_every_key(self, analyzer):
        graph = build_graph(analyzer, SOURCES)
        a = compute_summary_keys(graph, SOURCES, "fp", schema_version=1)
        b = compute_summary_keys(graph, SOURCES, "fp", schema_version=2)
        assert all(a[ref] != b[ref] for ref in a)

    def test_shifting_a_function_down_changes_its_key(self, analyzer):
        """Findings carry absolute line numbers, so a moved-but-unedited
        function must miss (its cached findings would point at the old
        lines)."""
        shifted = {**SOURCES, "other.py": "\n\n" + OTHER}
        a = compute_summary_keys(build_graph(analyzer, SOURCES), SOURCES, "fp")
        b = compute_summary_keys(build_graph(analyzer, shifted), shifted, "fp")
        ref = FunctionRef("other.py", "standalone")
        assert a[ref] != b[ref]

    def test_cycle_members_share_fate(self, analyzer):
        cyclic = {
            "m.py": (
                "def even(n):\n"
                "    r = odd(n)\n"
                "    return r\n"
                "def odd(n):\n"
                "    r = even(n)\n"
                "    return r\n"
            )
        }
        edited = {
            "m.py": cyclic["m.py"].replace("r = odd(n)", "r = odd(n)  # x")
        }
        a = compute_summary_keys(build_graph(analyzer, cyclic), cyclic, "fp")
        b = compute_summary_keys(build_graph(analyzer, edited), edited, "fp")
        even, odd = FunctionRef("m.py", "even"), FunctionRef("m.py", "odd")
        # only even's source changed, but both members re-key
        assert a[even] != b[even]
        assert a[odd] != b[odd]


def entry(ref="m:f", findings=(), tracked=0):
    return CachedFunctionAnalysis(
        schema_version=SUMMARY_SCHEMA_VERSION,
        ref=ref,
        findings=tuple(findings),
        tracked_objects=tracked,
        summary=None,
    )


class TestSummaryCacheStore:
    def test_miss_then_hit(self):
        cache = SummaryCache()
        assert cache.load("k", fingerprint="fp") is None
        cache.store("k", entry(), fingerprint="fp")
        assert cache.load("k", fingerprint="fp") == entry()
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_hit_rate(self):
        cache = SummaryCache()
        assert cache.hit_rate == 0.0
        cache.store("k", entry(), fingerprint="fp")
        cache.load("k", fingerprint="fp")
        cache.load("other", fingerprint="fp")
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = SummaryCache(memory_entries=2)
        cache.store("a", entry("m:a"), fingerprint="fp")
        cache.store("b", entry("m:b"), fingerprint="fp")
        cache.load("a", fingerprint="fp")  # refresh a
        cache.store("c", entry("m:c"), fingerprint="fp")  # evicts b
        assert cache.load("b", fingerprint="fp") is None
        assert cache.load("a", fingerprint="fp") is not None
        assert cache.evictions == 1

    def test_invalidate_fingerprint_drops_only_that_fingerprint(self):
        cache = SummaryCache()
        cache.store("old1", entry(), fingerprint="fp-old")
        cache.store("old2", entry(), fingerprint="fp-old")
        cache.store("new1", entry(), fingerprint="fp-new")
        assert cache.invalidate_fingerprint("fp-old") == 2
        assert cache.load("old1", fingerprint="fp-old") is None
        assert cache.load("new1", fingerprint="fp-new") is not None
        assert cache.invalidations == 2

    def test_clear(self):
        cache = SummaryCache()
        cache.store("a", entry(), fingerprint="fp")
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_disk_tier_round_trip(self, tmp_path):
        finding = Finding(
            kind=FindingKind.CONSTRAINT,
            message="weak",
            line=3,
            variable="cipher",
            rule="AES",
            file="m.py",
        )
        first = SummaryCache(tmp_path / "summaries")
        first.store("k", entry(findings=[finding], tracked=2), fingerprint="fp")
        # a fresh cache over the same directory hits from disk
        second = SummaryCache(tmp_path / "summaries")
        loaded = second.load("k", fingerprint="fp")
        assert loaded is not None
        assert loaded.findings == (finding,)
        assert loaded.tracked_objects == 2
        assert second.disk_hits == 1
        # and the entry is now promoted to memory
        second.load("k", fingerprint="fp")
        assert second.disk_hits == 1

    def test_corrupt_disk_entry_is_evicted_not_surfaced(self, tmp_path):
        cache = SummaryCache(tmp_path / "summaries")
        cache.store("k", entry(), fingerprint="fp")
        path = cache._store.path_for("k")
        path.write_bytes(b"not a pickle")
        fresh = SummaryCache(tmp_path / "summaries")
        assert fresh.load("k", fingerprint="fp") is None
        assert not path.exists()

    def test_schema_drift_on_disk_misses(self, tmp_path):
        cache = SummaryCache(tmp_path / "summaries")
        stale = CachedFunctionAnalysis(
            schema_version=SUMMARY_SCHEMA_VERSION + 1,
            ref="m:f",
            findings=(),
            tracked_objects=0,
            summary=None,
        )
        cache._store.path_for("k").write_bytes(
            pickle.dumps(stale, protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert cache.load("k", fingerprint="fp") is None

    def test_to_dict_shape(self):
        stats = SummaryCache().to_dict()
        assert set(stats) >= {
            "entries",
            "hits",
            "misses",
            "stores",
            "evictions",
            "invalidations",
            "hit_rate",
            "persistent",
        }


class TestAnalyzerIntegration:
    @pytest.fixture()
    def project_analyzer(self, ruleset):
        return ProjectAnalyzer(ruleset)

    INSECURE = {
        "bad.py": (
            "from cryptography.hazmat.primitives.ciphers import "
            "Cipher, algorithms, modes\n"
            "def broken(key, iv, data):\n"
            "    cipher = Cipher(algorithms.AES(key), modes.CBC(iv))\n"
            "    enc = cipher.encryptor()\n"
            "    enc.update(data)\n"
            "    return enc\n"
        ),
        "fine.py": OTHER,
    }

    def test_second_run_replays_everything(self, project_analyzer):
        first = project_analyzer.analyze_sources(dict(self.INSECURE))
        assert first.reanalyzed_functions == first.total_functions > 0
        second = project_analyzer.analyze_sources(dict(self.INSECURE))
        assert second.reanalyzed_functions == 0
        assert second.summary_cache_hits == second.total_functions

    def test_warm_report_is_identical_to_cold(self, project_analyzer):
        cold = project_analyzer.analyze_sources(dict(self.INSECURE))
        warm = project_analyzer.analyze_sources(dict(self.INSECURE))
        assert cold.to_dict() == warm.to_dict()
        assert not warm.is_secure

    def test_edit_reanalyzes_only_the_cone(self, project_analyzer):
        project_analyzer.analyze_sources(SOURCES)
        edited = {**SOURCES, "helpers.py": "def make_iv():\n    return b'1' * 16\n"}
        second = project_analyzer.analyze_sources(edited)
        # helpers.make_iv + app.run (its caller); other.standalone replays
        assert 0 < second.reanalyzed_functions < second.total_functions

    def test_reanalysis_counters_flow_into_diagnostics(self, project_analyzer):
        from repro.diagnostics import ANALYSIS_REANALYZED, SUMMARY_HITS

        first = project_analyzer.analyze_sources(SOURCES)
        project_analyzer.analyze_sources(SOURCES)
        diag = project_analyzer.diagnostics
        # run 1 re-analyzed everything, run 2 hit everything
        assert diag.counter(ANALYSIS_REANALYZED) == first.reanalyzed_functions
        assert diag.counter(SUMMARY_HITS) == first.total_functions

    def test_persistent_cache_warms_a_fresh_analyzer(self, ruleset, tmp_path):
        cache_dir = tmp_path / "summaries"
        first = ProjectAnalyzer(ruleset, summary_cache=SummaryCache(cache_dir))
        cold = first.analyze_sources(dict(self.INSECURE))
        assert cold.reanalyzed_functions > 0
        second = ProjectAnalyzer(ruleset, summary_cache=SummaryCache(cache_dir))
        warm = second.analyze_sources(dict(self.INSECURE))
        assert warm.reanalyzed_functions == 0
        assert warm.to_dict() == cold.to_dict()
