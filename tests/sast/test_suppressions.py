"""Inline ``# crysl: ignore`` suppression comments."""

from __future__ import annotations

import pytest

from repro.sast import ProjectAnalyzer
from repro.sast.report import AnalysisResult, Finding, FindingKind
from repro.sast.suppressions import (
    apply_suppressions,
    parse_suppressions,
    suppresses,
)


def finding(line=3, kind=FindingKind.TYPESTATE, rule="Cipher") -> Finding:
    return Finding(
        kind=kind,
        message="m",
        line=line,
        variable="v",
        rule=rule,
        file="m.py",
    )


class TestParse:
    def test_bare_ignore(self):
        marks = parse_suppressions("x = 1\ny = f()  # crysl: ignore\n")
        assert marks == {2: frozenset()}

    def test_bracketed_ids_are_lowercased_and_split(self):
        marks = parse_suppressions(
            "y = f()  # crysl: ignore[Typestate-Error, AES]\n"
        )
        assert marks == {1: frozenset({"typestate-error", "aes"})}

    def test_spacing_and_case_variants(self):
        for comment in (
            "#crysl:ignore",
            "# CRYSL: IGNORE",
            "#  crysl:  ignore",
        ):
            assert parse_suppressions(f"y = f()  {comment}\n"), comment

    def test_unrelated_comments_do_not_match(self):
        assert parse_suppressions("x = 1  # crysl rules are neat\n") == {}
        assert parse_suppressions("x = 1  # ignore\n") == {}


class TestMatching:
    def test_bare_set_suppresses_everything(self):
        assert suppresses(frozenset(), finding())

    def test_kind_id_matches(self):
        assert suppresses(frozenset({"typestate-error"}), finding())
        assert not suppresses(frozenset({"constraint-violation"}), finding())

    def test_rule_id_matches_case_insensitively(self):
        assert suppresses(frozenset({"cipher"}), finding(rule="Cipher"))

    def test_apply_marks_only_matching_lines(self):
        findings = [finding(line=3), finding(line=5)]
        out = apply_suppressions(findings, {3: frozenset()})
        assert [f.suppressed for f in out] == [True, False]


class TestReportSemantics:
    def test_suppressed_findings_do_not_fail_is_secure(self):
        result = AnalysisResult(findings=[finding()])
        assert not result.is_secure
        result.findings[:] = apply_suppressions(
            result.findings, {3: frozenset()}
        )
        assert result.is_secure
        assert result.findings  # still reported
        assert not result.active_findings

    def test_render_counts_suppressed(self):
        result = AnalysisResult(
            findings=apply_suppressions([finding()], {3: frozenset()})
        )
        assert "(1 suppressed)" in result.render()
        assert "(suppressed)" in str(result.findings[0])

    def test_to_dict_carries_the_flag(self):
        result = AnalysisResult(
            findings=apply_suppressions([finding()], {3: frozenset()})
        )
        assert result.to_dict()["findings"][0]["suppressed"] is True
        assert result.to_dict()["secure"] is True


INSECURE = (
    "from cryptography.hazmat.primitives.ciphers import "
    "Cipher, algorithms, modes\n"
    "def broken(key, iv, data):\n"
    "    cipher = Cipher(algorithms.AES(key), modes.CBC(iv)){mark1}\n"
    "    enc = cipher.encryptor(){mark2}\n"
    "    enc.update(data)\n"
    "    return enc\n"
)


class TestEndToEnd:
    @pytest.fixture()
    def project_analyzer(self, ruleset):
        return ProjectAnalyzer(ruleset)

    def test_unsuppressed_module_is_insecure(self, project_analyzer):
        source = INSECURE.format(mark1="", mark2="")
        result = project_analyzer.analyze_sources({"bad.py": source})
        assert not result.is_secure

    def test_suppressing_every_finding_makes_it_pass(self, project_analyzer):
        source = INSECURE.format(
            mark1="  # crysl: ignore", mark2="  # crysl: ignore"
        )
        result = project_analyzer.analyze_sources({"bad.py": source})
        assert result.is_secure
        assert result.findings  # reported, flagged
        assert all(f.suppressed for f in result.findings)

    def test_selective_suppression_keeps_other_findings_active(
        self, project_analyzer
    ):
        source = INSECURE.format(mark1="  # crysl: ignore", mark2="")
        result = project_analyzer.analyze_sources({"bad.py": source})
        assert not result.is_secure
        assert any(f.suppressed for f in result.findings)
        assert any(not f.suppressed for f in result.findings)

    def test_suppression_applies_on_warm_cache_replay(self, project_analyzer):
        """Cached entries store raw findings; the comment is applied at
        assembly, so a warm run reports the same suppressed shape."""
        source = INSECURE.format(
            mark1="  # crysl: ignore", mark2="  # crysl: ignore"
        )
        cold = project_analyzer.analyze_sources({"bad.py": source})
        warm = project_analyzer.analyze_sources({"bad.py": source})
        assert warm.reanalyzed_functions == 0
        assert warm.is_secure
        assert cold.to_dict() == warm.to_dict()
