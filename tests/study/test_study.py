"""The RQ5 harness: scales, latin square, simulation, analysis."""

from __future__ import annotations

import pytest

from repro.study import (
    ScaleError,
    latin_square,
    nps_classify,
    nps_score,
    run_study,
    sus_mean,
    sus_score,
    verify_balance,
)
from repro.study.latin import TASKS, TOOLS
from repro.study.participants import ParticipantSimulator
from repro.study.study import analyze


class TestSus:
    def test_all_best_answers(self):
        """Best possible: 5 on positive items, 1 on negative = 100."""
        assert sus_score([5, 1] * 5) == 100.0

    def test_all_worst_answers(self):
        assert sus_score([1, 5] * 5) == 0.0

    def test_neutral(self):
        assert sus_score([3] * 10) == 50.0

    def test_known_mixed(self):
        responses = [4, 2, 4, 2, 4, 2, 4, 2, 4, 2]
        assert sus_score(responses) == 75.0

    def test_wrong_count_rejected(self):
        with pytest.raises(ScaleError):
            sus_score([3] * 9)

    def test_out_of_range_rejected(self):
        with pytest.raises(ScaleError):
            sus_score([3] * 9 + [6])

    def test_mean(self):
        assert sus_mean([[3] * 10, [5, 1] * 5]) == 75.0

    def test_empty_mean_rejected(self):
        with pytest.raises(ScaleError):
            sus_mean([])


class TestNps:
    @pytest.mark.parametrize(
        "value,cls",
        [(10, "promoter"), (9, "promoter"), (8, "passive"), (7, "passive"), (6, "detractor"), (0, "detractor")],
    )
    def test_classification(self, value, cls):
        assert nps_classify(value) == cls

    def test_out_of_range(self):
        with pytest.raises(ScaleError):
            nps_classify(11)

    def test_score(self):
        # 2 promoters, 1 passive, 1 detractor of 4 -> (2-1)/4 = +25.
        assert nps_score([10, 9, 8, 3]) == 25.0

    def test_all_detractors(self):
        assert nps_score([0, 1, 2]) == -100.0

    def test_empty_rejected(self):
        with pytest.raises(ScaleError):
            nps_score([])


class TestLatinSquare:
    def test_balance_with_16(self):
        assignments = latin_square(16)
        assert len(assignments) == 16
        assert verify_balance(assignments)

    def test_everyone_does_both_tasks_with_both_tools(self):
        for assignment in latin_square(16):
            tasks = {task for task, _ in assignment.sessions}
            tools = {tool for _, tool in assignment.sessions}
            assert tasks == set(TASKS)
            assert tools == set(TOOLS)

    def test_too_few_participants(self):
        with pytest.raises(ValueError):
            latin_square(3)


class TestSimulation:
    def test_deterministic_given_seed(self):
        a = ParticipantSimulator(7).simulate(latin_square(8))
        b = ParticipantSimulator(7).simulate(latin_square(8))
        assert [r.crypto_experience for r in a] == [r.crypto_experience for r in b]

    def test_every_participant_complete(self):
        records = ParticipantSimulator(7).simulate(latin_square(16))
        for record in records:
            assert len(record.sessions) == 2
            assert set(record.sus_responses) == {"gen", "old-gen"}
            assert set(record.nps_likelihood) == {"gen", "old-gen"}

    def test_times_within_study_window(self):
        records = ParticipantSimulator(7).simulate(latin_square(64))
        for record in records:
            for session in record.sessions:
                assert 0 < session.minutes <= 30


class TestAnalysis:
    @pytest.fixture(scope="class")
    def results(self):
        return run_study()

    def test_reproduces_paper_pattern(self, results):
        assert results.participants == 16
        assert results.completion_all
        # Per-task effects in the paper's directions.
        assert results.encryption_slowdown_percent > 0
        assert results.hashing_speedup_percent > 40
        # Overall times not significant; usability strongly significant.
        assert not results.times_significant
        assert results.usability_significant

    def test_sus_values_near_paper(self, results):
        assert abs(results.sus["gen"] - 76.3) < 8
        assert abs(results.sus["old-gen"] - 50.8) < 8
        assert results.sus["gen"] > 68  # crosses the usability bar

    def test_nps_signs_match_paper(self, results):
        assert results.nps["gen"] > 40
        assert results.nps["old-gen"] < -20

    def test_preference_and_interviews(self, results):
        assert results.preferred_gen >= 14
        assert 0 <= results.mentioned_learning_curve <= 16

    def test_experience_profile(self, results):
        assert 4.0 < results.mean_experience < 6.5
        assert results.experience_usability_correlation_p > 0.05

    def test_larger_sample_tightens_effects(self):
        big = run_study(participants=400, seed=11)
        assert abs(big.encryption_slowdown_percent - 38) < 8
        assert abs(big.hashing_speedup_percent - 63.2) < 5
