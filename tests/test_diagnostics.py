"""Unit tests for the stage-level diagnostics layer."""

from __future__ import annotations

import pytest

from repro.diagnostics import (
    STAGES,
    TIER_DERIVED,
    TIER_TEMPLATE,
    Diagnostics,
    known_stages,
    register_stage,
)


def test_stage_accumulates_time_and_calls():
    diag = Diagnostics()
    with diag.stage("select"):
        pass
    with diag.stage("select"):
        pass
    timing = diag.stages["select"]
    assert timing.calls == 2
    assert timing.seconds >= 0.0
    assert diag.total_seconds == pytest.approx(
        sum(t.seconds for t in diag.stages.values())
    )


def test_unknown_stage_rejected():
    diag = Diagnostics()
    with pytest.raises(ValueError):
        with diag.stage("transmogrify"):
            pass


def test_counters_and_paths():
    diag = Diagnostics()
    diag.count("combos.evaluated")
    diag.count("combos.evaluated", 4)
    assert diag.counter("combos.evaluated") == 5
    assert diag.counter("never.touched") == 0
    diag.record_path_count("Cipher", 16)
    diag.record_path_count("Cipher", 16)  # idempotent per rule
    assert diag.path_counts == {"Cipher": 16}


def test_merge_combines_everything():
    a = Diagnostics()
    with a.stage("collect"):
        pass
    a.count(TIER_TEMPLATE, 2)
    a.record_path_count("Cipher", 16)
    a.warn("collect", "something odd", rule="Cipher")

    b = Diagnostics()
    with b.stage("collect"):
        pass
    with b.stage("emit"):
        pass
    b.count(TIER_TEMPLATE, 1)
    b.count(TIER_DERIVED, 3)

    a.merge(b)
    assert a.stages["collect"].calls == 2
    assert "emit" in a.stages
    assert a.counter(TIER_TEMPLATE) == 3
    assert a.counter(TIER_DERIVED) == 3
    assert len(a.warnings) == 1


def test_merge_keeps_max_path_count_on_collision():
    # Regression: merge() used to silently overwrite path_counts when
    # both sides recorded the same rule; the larger count must win.
    a = Diagnostics()
    a.record_path_count("Cipher", 16)
    a.record_path_count("SecureRandom", 4)

    b = Diagnostics()
    b.record_path_count("Cipher", 9)
    b.record_path_count("Mac", 2)

    a.merge(b)
    assert a.path_counts == {"Cipher": 16, "SecureRandom": 4, "Mac": 2}

    # And in the other direction the larger incoming count wins too.
    c = Diagnostics()
    c.record_path_count("Cipher", 25)
    a.merge(c)
    assert a.path_counts["Cipher"] == 25


def test_registered_stage_is_accepted_and_rendered_after_canonical():
    name = register_stage("transmography")
    try:
        assert name == "transmography"
        assert register_stage("transmography") == name  # idempotent
        assert known_stages()[: len(STAGES)] == STAGES
        assert "transmography" in known_stages()

        diag = Diagnostics()
        with diag.stage("transmography"):
            pass
        with diag.stage("collect"):
            pass
        assert diag.stages["transmography"].calls == 1
        # Canonical stages render before registered extras.
        rendered = diag.render()
        assert rendered.index("collect") < rendered.index("transmography")
        ordered = list(diag.to_dict()["stages"])
        assert ordered == ["collect", "transmography"]
    finally:
        from repro import diagnostics as _d

        _d._EXTRA_STAGES.remove("transmography")


def test_unregistered_stage_still_rejected_after_registration():
    register_stage("short-lived")
    try:
        diag = Diagnostics()
        with pytest.raises(ValueError):
            with diag.stage("never-registered"):
                pass
    finally:
        from repro import diagnostics as _d

        _d._EXTRA_STAGES.remove("short-lived")


def test_render_and_to_dict_cover_all_sections():
    diag = Diagnostics()
    for stage in STAGES:
        with diag.stage(stage):
            pass
    diag.count(TIER_TEMPLATE, 7)
    diag.record_path_count("SecureRandom", 4)
    diag.warn("resolve", "fell back to greedy", rule="Cipher")

    text = diag.render()
    assert "pipeline stages:" in text
    assert "parameter cascade" in text
    assert "SecureRandom" in text
    assert "fell back to greedy" in text

    data = diag.to_dict()
    assert set(data["stages"]) == set(STAGES)
    assert data["path_counts"] == {"SecureRandom": 4}
    assert data["warnings"][0]["rule"] == "Cipher"
