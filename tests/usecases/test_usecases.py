"""The Table 1 registry and generation of all eleven use cases."""

from __future__ import annotations

import pytest

from repro.usecases import (
    USE_CASES,
    generate_use_case,
    old_gen_use_cases,
    use_case,
    use_case_by_slug,
)


class TestRegistry:
    def test_eleven_use_cases(self):
        assert len(USE_CASES) == 11
        assert [u.number for u in USE_CASES] == list(range(1, 12))

    def test_lookup_by_number(self):
        assert use_case(9).name == "Secure User-Password Storage"

    def test_lookup_by_slug(self):
        assert use_case_by_slug("string_hashing").number == 11

    def test_unknown_lookups(self):
        with pytest.raises(KeyError):
            use_case(14)  # 12 and 13 exist as §7 extensions
        with pytest.raises(KeyError):
            use_case_by_slug("nope")

    def test_extension_use_cases(self):
        from repro.usecases import EXTENSION_USE_CASES

        assert [u.number for u in EXTENSION_USE_CASES] == [12, 13]
        for extension in EXTENSION_USE_CASES:
            assert use_case(extension.number) is extension
            assert extension.template_path().exists()

    def test_old_gen_subset_matches_table2(self):
        numbers = [u.number for u in old_gen_use_cases()]
        assert numbers == [1, 2, 3, 5, 6, 7, 9, 10]

    def test_template_paths_exist(self):
        for entry in USE_CASES:
            assert entry.template_path().exists(), entry.slug

    def test_paper_numbers_recorded(self):
        assert use_case(9).paper_runtime_seconds == 8.1
        assert use_case(3).paper_memory_mb == 66.6

    def test_sources_follow_table1(self):
        assert use_case(10).sources == ("[21]", "[27]", "[29]")


class TestGeneration:
    @pytest.mark.parametrize("entry", USE_CASES, ids=lambda u: u.slug)
    def test_generates_and_compiles(self, entry, generator):
        module = generate_use_case(entry.number, generator)
        module.compile_check()
        assert f"class {entry.template_class}" in module.source
        assert f"class Output{entry.template_class}" in module.source

    def test_pbe_variants_share_crypto_core(self, generator):
        """Use cases 1-3 are 'virtually the same' (§5.1): identical
        fluent chains, different glue."""
        cores = []
        for number in (1, 2, 3):
            module = generate_use_case(number, generator)
            (report, *_rest) = module.reports
            cores.append(
                tuple(
                    (plan.instance.rule.class_name, plan.labels)
                    for plan in report.plan.instances
                )
            )
        assert cores[0] == cores[1] == cores[2]

    def test_hybrid_variants_share_crypto_core(self, generator):
        cores = []
        for number in (5, 6, 7):
            module = generate_use_case(number, generator)
            encrypt_report = next(
                r for r in module.reports if "encrypt" in r.method_name
            )
            cores.append(
                tuple(
                    (plan.instance.rule.class_name, plan.labels)
                    for plan in encrypt_report.plan.instances
                )
            )
        assert cores[0] == cores[1] == cores[2]

    def test_extension_use_case_generates(self, generator, analyzer):
        module = generate_use_case(12, generator)
        module.compile_check()
        assert analyzer.analyze_source(module.source, "uc12").is_secure
        assert "Mac.get_instance('HmacSHA256')" in module.source

    def test_key_storage_extension_selects_both_flows(self, generator):
        """UC13: the same KeyStore rule yields create→set→store in one
        method and load→get in the other, purely from scoring."""
        module = generate_use_case(13, generator)
        source = module.source
        create_body = source.split("def create")[1].split("def open")[0]
        open_body = source.split("def open")[1].split("class Output")[0]
        for fragment in (".create(", ".set_key_entry(", ".store("):
            assert fragment in create_body
        assert ".load(" in open_body and ".get_key(" in open_body
        assert ".set_key_entry(" not in open_body

    def test_hybrid_uses_two_cipher_instances(self, generator):
        module = generate_use_case(7, generator)
        encrypt_report = next(r for r in module.reports if r.method_name == "encrypt")
        cipher_instances = [
            plan
            for plan in encrypt_report.plan.instances
            if plan.instance.rule.simple_name == "Cipher"
        ]
        assert len(cipher_instances) == 2
        labels = {plan.labels[-1] for plan in cipher_instances}
        assert labels == {"f1", "w1"}  # one encrypts, one wraps
